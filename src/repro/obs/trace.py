"""Hierarchical execution tracing: spans and the :class:`Tracer`.

A **span** mirrors one plan-node occurrence in one execution: its
operator label (the reference interpreter's ledger label), the rows it
produced, the work it was charged, wall time, whether it was served by
the result cache or the CSE memo, and which physical shortcut (index
reuse, bulk set op) evaluated it.  Span trees mirror the executor's
frame/ledger structure exactly — a subtree served from the cache is a
single childless span carrying the subtree's as-if work, just as the
ledger splices the stored entries.

The tracing contract, pinned by ``tests/obs/test_trace_properties.py``
and the ``trace`` fuzz scenario:

* **zero overhead when disabled** — every executor takes
  ``tracer=None`` by default and touches no tracing code on that path;
* **observer effect zero** — a traced run returns the identical value,
  work, ledger, and leaves the identical cache contents as an untraced
  run;
* **determinism modulo wall time** — for a fixed plan, database and
  cache state, everything in a span except ``wall_s`` is deterministic:
  structure, labels, rows, work, cache and source annotations are
  identical across runs, serial or sharded.

Wall-time attribution is best-effort and executor-specific: the
reference and batch executors report per-operator compute time
(children excluded); the streaming executor reports time spent pulling
rows through a pipelined operator, which *includes* its upstream
producers (that is what a pipeline is), and exact materialization time
at pipeline breakers.  Use ``work``/``rows`` for cross-executor
comparisons; ``wall_s`` for profiling one executor.

All tree walks are explicit-stack: span trees mirror plan trees, which
can be thousands of levels deep.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One plan-node occurrence in one traced execution.

    ``rows`` is the number of *distinct* tuples the node produced
    (``None`` when unknowable, e.g. an index-served build side that was
    never re-read).  ``work`` is exactly the node's ledger charge; for
    a cache/CSE-served span it is the whole subtree's as-if work, so
    summing ``work`` over any span tree reproduces the execution's
    total work.  ``cache`` is ``None`` (not applicable), ``"hit"``,
    ``"miss"``, or ``"cse"`` (served by the in-plan subtree memo).
    ``source`` marks physical shortcuts: ``"index"`` (database index
    reuse) or ``"bulk"`` (frozenset fast path).
    """

    __slots__ = ("label", "work", "rows", "wall_s", "cache", "source",
                 "children", "meta")

    def __init__(self, label: str) -> None:
        self.label = label
        self.work = 0
        self.rows: Optional[int] = None
        self.wall_s = 0.0
        self.cache: Optional[str] = None
        self.source: Optional[str] = None
        self.children: list["Span"] = []
        #: Free-form deterministic annotations (e.g. the auto-mode
        #: decision on a root span); ``None`` stays out of ``to_dict``
        #: and is never part of ``structure()``.
        self.meta: Optional[dict] = None

    def merge_meta(self, updates: dict) -> None:
        """Merge ``updates`` into ``meta`` without clobbering keys some
        other layer already attached (the executor, the auto-mode
        decision, a degradation record — all coexist on the root)."""
        if self.meta is None:
            self.meta = dict(updates)
        else:
            self.meta.update(updates)

    def walk(self) -> Iterator["Span"]:
        """Preorder iterator over the span tree (explicit stack)."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def total_work(self) -> int:
        """Sum of per-span work — equals the execution's total work."""
        return sum(span.work for span in self.walk())

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def structure(self) -> tuple:
        """A hashable, wall-time-free digest of the span tree: one
        ``(label, rows, work, cache, child-count)`` entry per node, in
        preorder.  Preorder plus child counts determines the tree
        uniquely, and the digest is *flat* — nested tuples mirroring a
        plan thousands of levels deep would overflow the interpreter's
        recursion limit just being compared or hashed.

        Excludes ``wall_s`` (nondeterministic) and ``source`` (a
        physical shortcut annotation — the streaming engine's bulk
        fast path has no batch counterpart, but produces the same
        rows/work), so two executors that agree observationally have
        equal structures.
        """
        return tuple(
            (span.label, span.rows, span.work, span.cache,
             len(span.children))
            for span in self.walk()
        )

    def to_dict(self, *, wall: bool = True) -> dict:
        """JSON-ready nested dict; ``wall=False`` drops the only
        nondeterministic field, making output byte-comparable."""
        memo: dict[int, dict] = {}
        stack: list[tuple[Span, bool]] = [(self, False)]
        while stack:
            span, ready = stack.pop()
            if not ready:
                stack.append((span, True))
                for child in reversed(span.children):
                    stack.append((child, False))
                continue
            entry: dict = {"op": span.label, "rows": span.rows,
                           "work": span.work}
            if wall:
                entry["wall_s"] = span.wall_s
            if span.cache is not None:
                entry["cache"] = span.cache
            if span.source is not None:
                entry["source"] = span.source
            if span.meta is not None:
                entry["meta"] = span.meta
            entry["children"] = [memo[id(c)] for c in span.children]
            memo[id(span)] = entry
        return memo[id(self)]

    def __repr__(self) -> str:
        return (f"Span({self.label!r}, rows={self.rows}, work={self.work}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects one root span per traced execution.

    Pass a ``Tracer`` to ``execute_reference``/``execute_streaming``/
    ``execute_batch``/``Database.run`` via the ``tracer=`` kwarg; the
    executor records the finished span tree here.  A single tracer can
    observe many executions (``traces`` keeps them in order); ``last``
    is the most recent root span.
    """

    __slots__ = ("traces",)

    def __init__(self) -> None:
        self.traces: list[Span] = []

    def record(self, root: Span) -> Span:
        self.traces.append(root)
        return root

    @property
    def last(self) -> Optional[Span]:
        return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        self.traces.clear()

    def __len__(self) -> int:
        return len(self.traces)

    def __repr__(self) -> str:
        return f"Tracer(traces={len(self.traces)})"
