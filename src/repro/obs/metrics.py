"""Process-wide metrics: counters, gauges, deterministic histograms.

A :class:`MetricsRegistry` is a plain in-process aggregation point —
no background threads, no clocks, no I/O.  Three instrument kinds:

* **counters** — monotonically increasing integers (``counter``);
* **gauges** — last-written values, merged by ``max`` so the merge is
  order-insensitive (``gauge``);
* **histograms** — fixed bucket boundaries declared at first
  observation (``observe``), so the rendered output is deterministic:
  the same observations always land in the same buckets, regardless of
  process, ordering, or sharding.

Snapshots are plain nested dicts with sorted keys — picklable across
process boundaries and byte-comparable after ``json.dumps``.  The
parallel harness (:func:`repro.parallel.parallel_map` with
``merge_metrics=True``) ships each worker chunk's snapshot *delta*
back to the parent and folds it into the parent's registry, so counter
and histogram totals are identical between ``jobs=1`` and ``jobs=N``
runs (sums commute; gauges merge by ``max``).

``REGISTRY`` is the process-wide default; the module-level
``counter``/``gauge``/``observe`` helpers write to it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "observe",
    "snapshot_delta",
]

#: Default histogram boundaries: a 1-2.5-5 ladder wide enough for row
#: counts, work units and span counts.  An implicit overflow bucket
#: catches everything above the last boundary.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def _bucket_labels(boundaries: Sequence[float]) -> list[str]:
    return [f"le_{b:g}" for b in boundaries] + ["inf"]


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms, mergeable."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> (boundaries, per-bucket counts incl. overflow,
        #: observation count, observation sum)
        self._histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Instruments.

    def counter(self, name: str, amount: int = 1) -> int:
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            boundaries = tuple(buckets)
            if tuple(sorted(boundaries)) != boundaries or not boundaries:
                raise ValueError(
                    f"histogram buckets must be non-empty and sorted, "
                    f"got {boundaries!r}"
                )
            hist = {
                "boundaries": boundaries,
                "counts": [0] * (len(boundaries) + 1),
                "count": 0,
                "sum": 0,
            }
            self._histograms[name] = hist
        elif hist["boundaries"] != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{hist['boundaries']!r}"
            )
        hist["counts"][bisect_left(hist["boundaries"], value)] += 1
        hist["count"] += 1
        hist["sum"] += value

    # ------------------------------------------------------------------
    # Snapshots and merging.

    def snapshot(self) -> dict:
        """Deterministic plain-dict view: sorted names, labeled buckets."""
        histograms = {}
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            histograms[name] = {
                "boundaries": list(hist["boundaries"]),
                "buckets": dict(
                    zip(_bucket_labels(hist["boundaries"]), hist["counts"])
                ),
                "count": hist["count"],
                "sum": hist["sum"],
            }
        return {
            "counters": {n: self._counters[n] for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n] for n in sorted(self._gauges)},
            "histograms": histograms,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot (or delta) into this one.

        Counters and histogram cells add; gauges merge by ``max`` so
        the result is independent of merge order.  Histogram boundary
        mismatches raise — merging buckets that mean different things
        would silently corrupt the distribution.
        """
        for name, amount in snapshot.get("counters", {}).items():
            self.counter(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            if name not in self._gauges or value > self._gauges[name]:
                self._gauges[name] = value
        for name, incoming in snapshot.get("histograms", {}).items():
            boundaries = tuple(incoming["boundaries"])
            hist = self._histograms.get(name)
            if hist is None:
                hist = {
                    "boundaries": boundaries,
                    "counts": [0] * (len(boundaries) + 1),
                    "count": 0,
                    "sum": 0,
                }
                self._histograms[name] = hist
            elif hist["boundaries"] != boundaries:
                raise ValueError(
                    f"cannot merge histogram {name!r}: boundaries differ"
                )
            labels = _bucket_labels(boundaries)
            for i, label in enumerate(labels):
                hist["counts"][i] += incoming["buckets"][label]
            hist["count"] += incoming["count"]
            hist["sum"] += incoming["sum"]

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render(self) -> str:
        """Human-readable dump (deterministic line order)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name} = {value}")
        for name, hist in snap["histograms"].items():
            cells = " ".join(
                f"{label}:{n}" for label, n in hist["buckets"].items() if n
            )
            lines.append(
                f"histogram {name} count={hist['count']} "
                f"sum={hist['sum']} {cells}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


def snapshot_delta(after: dict, before: dict) -> dict:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram cells subtract (empty results dropped);
    gauges keep their ``after`` values.  The worker side of
    ``parallel_map(merge_metrics=True)`` ships deltas, not absolutes,
    so a reused worker process never double-reports earlier chunks.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        diff = value - before.get("counters", {}).get(name, 0)
        if diff:
            counters[name] = diff
    histograms = {}
    for name, hist in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None:
            delta_count = hist["count"]
            buckets = dict(hist["buckets"])
            delta_sum = hist["sum"]
        elif tuple(prior["boundaries"]) != tuple(hist["boundaries"]):
            raise ValueError(
                f"cannot diff histogram {name!r}: boundaries differ"
            )
        else:
            delta_count = hist["count"] - prior["count"]
            buckets = {
                label: n - prior["buckets"][label]
                for label, n in hist["buckets"].items()
            }
            delta_sum = hist["sum"] - prior["sum"]
        if delta_count:
            histograms[name] = {
                "boundaries": list(hist["boundaries"]),
                "buckets": buckets,
                "count": delta_count,
                "sum": delta_sum,
            }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


#: The process-wide default registry.
REGISTRY = MetricsRegistry()


def counter(name: str, amount: int = 1) -> int:
    return REGISTRY.counter(name, amount)


def gauge(name: str, value: float) -> None:
    REGISTRY.gauge(name, value)


def observe(
    name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
) -> None:
    REGISTRY.observe(name, value, buckets)
