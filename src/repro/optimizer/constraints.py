"""Schema constraints the rewrite rules consult.

Section 4.4's key example: ``pi_1(R - S) = pi_1(R) - pi_1(S)`` is valid
only when the first column is a key *for R union S* — i.e. the
projection is injective on the instances involved.  The catalog records
declared keys per relation and answers whether a projection is provably
injective over a set of plan inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..types.values import CVSet, Tup
from .plan import Difference, Intersect, Plan, Scan, Select, Union

__all__ = ["RelationInfo", "Catalog", "base_relations", "projection_injective_on"]


@dataclass
class RelationInfo:
    """Declared schema facts for one base relation."""

    name: str
    arity: int
    #: Column-index sets each of which functionally determines the tuple.
    keys: tuple[tuple[int, ...], ...] = ()
    #: Keys declared to hold across a *group* of union-compatible
    #: relations (e.g. a company-wide SSN shared by employees and
    #: students in the paper's example).  Maps key columns to the group
    #: label.
    shared_keys: dict[tuple[int, ...], str] = field(default_factory=dict)


class Catalog:
    """A set of relation schemas plus constraint queries."""

    def __init__(self, relations: Iterable[RelationInfo] = ()) -> None:
        self.relations = {r.name: r for r in relations}

    def add(self, info: RelationInfo) -> None:
        self.relations[info.name] = info

    def __getitem__(self, name: str) -> RelationInfo:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def key_for(self, name: str, columns: Sequence[int]) -> bool:
        """Do ``columns`` contain a declared key of ``name``?"""
        info = self.relations.get(name)
        if info is None:
            return False
        column_set = set(columns)
        return any(set(key) <= column_set for key in info.keys)

    def shared_key_group(
        self, name: str, columns: Sequence[int]
    ) -> Optional[str]:
        """The shared-key group label covering ``columns``, if any."""
        info = self.relations.get(name)
        if info is None:
            return None
        column_set = set(columns)
        for key, group in info.shared_keys.items():
            if set(key) <= column_set:
                return group
        return None


def base_relations(plan: Plan) -> frozenset[str]:
    """Names of all base relations a plan reads.

    Explicit-stack traversal: safe on plans of arbitrary depth."""
    out: set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            out.add(node.relation)
        else:
            stack.extend(node.children())
    return frozenset(out)


def _columns_preserved(plan: Plan, columns: Sequence[int]) -> bool:
    """Conservative test: does ``plan`` pass base-relation columns
    through unchanged at the given positions?  True for scans,
    selections and unions of such.  Iterative: selection/union chains
    can be arbitrarily deep."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            continue
        if isinstance(node, Select):
            stack.append(node.child)
        elif isinstance(node, (Union, Difference, Intersect)):
            stack.append(node.left)
            stack.append(node.right)
        else:
            return False
    return True


def projection_injective_on(
    catalog: Catalog, plans: Sequence[Plan], columns: Sequence[int]
) -> bool:
    """Is ``pi_columns`` provably injective across all tuples of the
    given subplans, jointly?

    Sufficient condition implemented (the paper's scenario): every
    subplan passes columns through from base relations, each base
    relation declares a *shared* key inside ``columns``, and all base
    relations involved belong to the same shared-key group — so no two
    distinct tuples anywhere in the union can agree on ``columns``.
    """
    groups: set[str] = set()
    for plan in plans:
        if not _columns_preserved(plan, columns):
            return False
        for name in base_relations(plan):
            group = catalog.shared_key_group(name, columns)
            if group is None:
                return False
            groups.add(group)
    return len(groups) == 1


def check_key_on_instance(
    relation: CVSet, columns: Sequence[int]
) -> bool:
    """Runtime validation that ``columns`` are a key of an instance —
    used by the experiments to confirm declared constraints hold on the
    generated workloads."""
    seen: dict[tuple, Tup] = {}
    for t in relation:
        key = tuple(t[i] for i in columns)
        if key in seen and seen[key] != t:
            return False
        seen[key] = t
    return True
