"""Logical query plans.

A small algebraic plan IR over named relations, with an interpreter
that *counts work* (tuples consumed per operator) so the optimization
experiments can report measured cost reductions, not just estimates.

Plans are immutable; rewrites build new trees.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping as TMapping, Optional, Sequence

from ..obs.trace import Span, Tracer
from ..types.values import CVSet, Tup, Value

__all__ = [
    "Plan",
    "Scan",
    "Project",
    "Select",
    "Union",
    "Difference",
    "Intersect",
    "Product",
    "Join",
    "MapNode",
    "ExecutionResult",
    "execute",
    "execute_reference",
    "tuple_weight",
]


@dataclass(frozen=True, eq=False)
class Plan:
    """Abstract plan node.

    Equality and hashing are structural (callables compare by their
    declared *name*, see :class:`Select`/:class:`MapNode`) but are
    implemented without recursion: the hash is computed once at
    construction from the children's cached hashes (plans are built
    bottom-up, so this is O(1) per node), and ``__eq__`` walks an
    explicit stack.  Plans thousands of levels deep can therefore be
    hashed, compared, and used as dict keys without ``RecursionError``.
    """

    def children(self) -> tuple["Plan", ...]:
        return ()

    def with_children(self, children: tuple["Plan", ...]) -> "Plan":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def _scalar_key(self) -> tuple:
        """The node's non-child compared fields (callables excluded)."""
        return ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    type(self).__name__,
                    self._scalar_key(),
                    tuple(hash(c) for c in self.children()),
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Plan):
            return NotImplemented
        if self._hash != other._hash:  # type: ignore[attr-defined]
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            if a is None or b is None:
                return False
            if type(a) is not type(b) or a._scalar_key() != b._scalar_key():
                return False
            ca, cb = a.children(), b.children()
            if len(ca) != len(cb):
                return False
            stack.extend(zip(ca, cb))
        return True


@dataclass(frozen=True, eq=False)
class Scan(Plan):
    """Read a named base relation."""

    relation: str

    def _scalar_key(self) -> tuple:
        return (self.relation,)

    def __str__(self) -> str:
        return self.relation


@dataclass(frozen=True, eq=False)
class Project(Plan):
    """``pi_cols`` (0-based column indices), set semantics."""

    columns: tuple[int, ...]
    child: Plan

    def _scalar_key(self) -> tuple:
        return (self.columns,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> "Project":
        (child,) = children
        return Project(self.columns, child)

    def __str__(self) -> str:
        cols = ",".join(str(c + 1) for c in self.columns)
        return f"pi[{cols}]({self.child})"


@dataclass(frozen=True, eq=False)
class Select(Plan):
    """``sigma_p``; the predicate is named so rules can reason about it."""

    predicate_name: str
    predicate: Callable[[Tup], bool] = field(compare=False)
    child: Plan = field(default=None)  # type: ignore[assignment]

    def _scalar_key(self) -> tuple:
        return (self.predicate_name,)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> "Select":
        (child,) = children
        return Select(self.predicate_name, self.predicate, child)

    def __str__(self) -> str:
        return f"sigma[{self.predicate_name}]({self.child})"


@dataclass(frozen=True, eq=False)
class Union(Plan):
    left: Plan
    right: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> "Union":
        left, right = children
        return Union(left, right)

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True, eq=False)
class Difference(Plan):
    left: Plan
    right: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


@dataclass(frozen=True, eq=False)
class Intersect(Plan):
    left: Plan
    right: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> "Intersect":
        left, right = children
        return Intersect(left, right)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, eq=False)
class Product(Plan):
    left: Plan
    right: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> "Product":
        left, right = children
        return Product(left, right)

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


@dataclass(frozen=True, eq=False)
class Join(Plan):
    """Equi-join on column index pairs ``on = ((i, j), ...)``."""

    on: tuple[tuple[int, int], ...]
    left: Plan = field(default=None)  # type: ignore[assignment]
    right: Plan = field(default=None)  # type: ignore[assignment]

    def _scalar_key(self) -> tuple:
        return (self.on,)

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Plan, ...]) -> "Join":
        left, right = children
        return Join(self.on, left, right)

    def __str__(self) -> str:
        return f"({self.left} |x|{list(self.on)} {self.right})"


@dataclass(frozen=True, eq=False)
class MapNode(Plan):
    """``map(f)`` over tuples; ``injective`` is declared metadata the
    rules may rely on (Section 4.4's key-based pushes)."""

    fn_name: str
    fn: Callable[[Tup], Value] = field(compare=False)
    child: Plan = field(default=None)  # type: ignore[assignment]
    injective: bool = False

    def _scalar_key(self) -> tuple:
        return (self.fn_name, self.injective)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Plan, ...]) -> "MapNode":
        (child,) = children
        return MapNode(self.fn_name, self.fn, child, self.injective)

    def __str__(self) -> str:
        return f"map[{self.fn_name}]({self.child})"


def tuple_weight(t: Value) -> int:
    """Per-tuple width weight: atoms consumed when reading one tuple.

    The streaming executor (:mod:`repro.engine.exec`) charges this per
    consumed tuple, matching :func:`_weight` below so both executors
    report costs under the identical work model."""
    try:
        return max(len(t), 1)
    except TypeError:  # atoms produced by map(f) weigh 1
        return 1


def _weight(relation: CVSet) -> int:
    """Width-weighted size: total atoms consumed when reading a relation.

    Using atoms rather than tuple counts makes the benefit of early
    projection visible — narrower intermediate results are cheaper for
    every downstream operator, which is the practical content of the
    Section 4.4 rewrites.  Charged via :func:`tuple_weight` so relations
    holding bare atoms (``map(f)`` outputs) weigh 1 per atom instead of
    raising ``TypeError``."""
    return sum(tuple_weight(t) for t in relation)


@dataclass
class ExecutionResult:
    """A query answer plus the work (tuples consumed) per operator."""

    value: CVSet
    work: int
    per_node: list[tuple[str, int]] = field(default_factory=list)


def _eval_node(
    node: Plan,
    inputs: Sequence[tuple[CVSet, int]],
    db: TMapping[str, CVSet],
    log: list[tuple[str, int]],
) -> tuple[CVSet, int]:
    """Evaluate one node given its children's (value, cost) results."""
    if isinstance(node, Scan):
        relation = db.get(node.relation, CVSet())
        log.append((str(node), 0))
        return relation, 0
    if isinstance(node, Project):
        (child, cost) = inputs[0]
        work = _weight(child)
        log.append((f"pi{node.columns}", work))
        return (
            CVSet(t.project(node.columns) for t in child),
            cost + work,
        )
    if isinstance(node, Select):
        (child, cost) = inputs[0]
        work = _weight(child)
        log.append((f"sigma[{node.predicate_name}]", work))
        return CVSet(t for t in child if node.predicate(t)), cost + work
    if isinstance(node, MapNode):
        (child, cost) = inputs[0]
        work = _weight(child)
        log.append((f"map[{node.fn_name}]", work))
        return CVSet(node.fn(t) for t in child), cost + work
    if isinstance(node, Union):
        (left, lcost), (right, rcost) = inputs
        work = _weight(left) + _weight(right)
        log.append(("union", work))
        return left.union(right), lcost + rcost + work
    if isinstance(node, Difference):
        (left, lcost), (right, rcost) = inputs
        work = _weight(left) + _weight(right)
        log.append(("difference", work))
        return left.difference(right), lcost + rcost + work
    if isinstance(node, Intersect):
        (left, lcost), (right, rcost) = inputs
        work = _weight(left) + _weight(right)
        log.append(("intersect", work))
        return left.intersection(right), lcost + rcost + work
    if isinstance(node, Product):
        (left, lcost), (right, rcost) = inputs
        work = len(left) * _weight(right) + _weight(left)
        log.append(("product", work))
        out = CVSet(
            Tup(tuple(a) + tuple(b)) for a in left for b in right
        )
        return out, lcost + rcost + work
    if isinstance(node, Join):
        (left, lcost), (right, rcost) = inputs
        # Hash join on the first join column pair.
        work = _weight(left) + _weight(right)
        out = set()
        if node.on:
            i0, j0 = node.on[0]
            index: dict[Value, list[Tup]] = {}
            for b in right:
                index.setdefault(b[j0], []).append(b)
            for a in left:
                for b in index.get(a[i0], ()):
                    work += 1
                    if all(a[i] == b[j] for i, j in node.on):
                        out.add(Tup(tuple(a) + tuple(b)))
        else:
            work += len(left) * len(right)
            out = {
                Tup(tuple(a) + tuple(b)) for a in left for b in right
            }
        log.append((f"join{node.on}", work))
        return CVSet(out), lcost + rcost + work
    raise TypeError(f"unknown plan node: {node!r}")


def execute(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    tracer: Optional[Tracer] = None,
) -> ExecutionResult:
    """Evaluate ``plan`` over ``db``, counting tuples consumed.

    Work accounting: every operator pays one unit per input tuple it
    consumes (products/joins pay per considered pair), matching the
    usual tuple-at-a-time cost intuition.

    The traversal is an explicit-stack postorder, not recursion, so
    plans of arbitrary depth evaluate without ``RecursionError``; the
    per-node log order (children left-to-right, then the node) is
    identical to the old recursive interpreter's.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records one span
    per plan node — label and work straight from the ledger, rows from
    the materialized result, wall time per operator (children
    excluded).  ``None`` touches no tracing code.
    """
    log: list[tuple[str, int]] = []
    stack: list[tuple[Plan, bool]] = [(plan, False)]
    results: list[tuple[CVSet, int]] = []
    # Span stack paralleling ``results``; None is the disabled path.
    spans: Optional[list[Span]] = [] if tracer is not None else None
    while stack:
        node, ready = stack.pop()
        if not isinstance(node, Plan):
            raise TypeError(f"unknown plan node: {node!r}")
        if not ready:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        n = len(node.children())
        if n:
            inputs = results[-n:]
            del results[-n:]
        else:
            inputs = []
        if spans is None:
            results.append(_eval_node(node, inputs, db, log))
        else:
            child_spans = spans[-n:] if n else []
            if n:
                del spans[-n:]
            start = time.perf_counter()
            result = _eval_node(node, inputs, db, log)
            wall = time.perf_counter() - start
            results.append(result)
            label, work = log[-1]
            span = Span(label)
            span.wall_s = wall
            span.work = work
            span.rows = len(result[0])
            span.children = child_spans
            spans.append(span)
    value, work = results.pop()
    if tracer is not None:
        tracer.record(spans.pop())
    return ExecutionResult(value=value, work=work, per_node=log)


#: The tuple-at-a-time recursive interpreter above is the *semantic
#: reference*: every physical executor (see :mod:`repro.engine.exec`)
#: must return the same ``CVSet`` and the same work counts.
execute_reference = execute
