"""Query optimization via genericity/parametricity (paper Section 4.4)."""

from .constraints import (
    Catalog,
    RelationInfo,
    base_relations,
    check_key_on_instance,
    projection_injective_on,
)
from .plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    execute,
    execute_reference,
    tuple_weight,
)
from .cost import Estimate, Stats, choose_plan, estimate
from .parser import PlanParseError, parse_plan
from .schema_infer import (
    SchemaInferenceError,
    infer_arity,
    plan_type,
    validate_plan,
)
from .rewriter import Rewriter, RewriteTrace, verify_equivalence
from .rules import DEFAULT_RULES, RewriteRule

__all__ = [name for name in dir() if not name.startswith("_")]
