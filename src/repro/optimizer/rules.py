"""Rewrite rules justified by genericity / parametricity (Section 4.4).

Each rule records *why* it is sound in the paper's terms:

* ``map(f)`` commutes with fully generic / fully parametric operators
  for **arbitrary** ``f`` — "f could be any user-defined method, in any
  programming language, about which we know nothing";
* projection (``map(pi_1)``) pushes through union by the parametricity
  of ``union : forall X. {X} * {X} -> {X}`` — note the paper stresses
  plain genericity of union does *not* imply this, because ``pi_1``
  changes value structure;
* projection pushes through difference/intersection **only** when it is
  injective on the instances — difference is generic only w.r.t.
  injective mappings; the side condition is discharged from declared
  key constraints (the paper's employees/students SSN example);
* ``map(f)`` pushes through difference only when ``f`` is declared
  injective, for the same reason;
* selection pushes through union/difference/product because
  ``sigma : forall X. (X -> bool) -> {X} -> {X}`` is parametric and the
  same predicate is preserved on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .constraints import Catalog, projection_injective_on
from .plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)

__all__ = [
    "RewriteRule",
    "DEFAULT_RULES",
    "DELTA_MONOTONE",
    "SEMI_MAINTAINABLE",
    "OPAQUE",
    "NODE_MONOTONICITY",
    "HASH_PARTITIONABLE",
    "ROUND_ROBIN_SAFE",
    "NON_PARTITIONABLE",
    "NODE_PARTITIONABILITY",
]

# ----------------------------------------------------------------------
# Maintainability classes (semi-naive delta view maintenance).
#
# The same genericity analysis that justifies the Section 4.4 rewrites
# classifies operators by how they behave under *insertions*: an
# operator that is monotone in an input distributes over unions of that
# input, so ``op(R + dR) = op(R) + op'(dR, R)`` for a cheap delta form
# ``op'`` — the classical licence for semi-naive view maintenance.
# ``engine/exec/delta.py`` consumes this table as its source of truth.

#: Inserted deltas propagate through the node as ``dout = op(din, ...)``
#: (probing existing sibling state for joins/products).
DELTA_MONOTONE = "delta-monotone"
#: Monotone in the *left* input only: a right-side delta can retract
#: previously-derived rows, so it forces a recompute.
SEMI_MAINTAINABLE = "semi-maintainable"
#: No delta form is known; maintenance must fall back to invalidation.
OPAQUE = "opaque"

#: ``plan node type -> (class, justification in the paper's terms)``.
#: Node types absent from the table are treated as :data:`OPAQUE`.
NODE_MONOTONICITY: dict[type, tuple[str, str]] = {
    Scan: (
        DELTA_MONOTONE,
        "a base relation is its own delta: an insert *is* dR",
    ),
    Select: (
        DELTA_MONOTONE,
        "sigma : forall X.(X->bool)->{X}->{X} is parametric, so "
        "sigma_p(R + dR) = sigma_p(R) + sigma_p(dR) (Section 4.3)",
    ),
    Project: (
        DELTA_MONOTONE,
        "pi is fully generic and distributes over union "
        "(new projected rows may duplicate old ones; the delta form "
        "subtracts the existing view)",
    ),
    MapNode: (
        DELTA_MONOTONE,
        "map(f) commutes with union for arbitrary f — 'f could be any "
        "user-defined method ... about which we know nothing' "
        "(Section 4.4)",
    ),
    Union: (
        DELTA_MONOTONE,
        "union is fully generic/parametric and associative-commutative: "
        "(L + dL) U (R + dR) = (L U R) + (dL U dR)",
    ),
    Intersect: (
        DELTA_MONOTONE,
        "intersection is monotone in both inputs: the delta is "
        "(dL & R') U (dR & L'), probing the maintained sibling state",
    ),
    Product: (
        DELTA_MONOTONE,
        "cross product is fully generic and bilinear over union: "
        "dout = dL x R' + L x dR",
    ),
    Join: (
        DELTA_MONOTONE,
        "equi-join is a selection over a product, hence monotone in "
        "both inputs: dout = dL |x| R' + L |x| dR via the hash indexes",
    ),
    Difference: (
        SEMI_MAINTAINABLE,
        "difference is generic only w.r.t. injective mappings and "
        "anti-monotone in its right input: left deltas propagate as "
        "dL - R, right deltas retract derived rows and force recompute",
    ),
}


# ----------------------------------------------------------------------
# Partitionability classes (sharded partition-parallel execution).
#
# The genericity story also licenses *horizontal* decomposition: a
# mapping generic under domain permutations commutes with any disjoint
# repartitioning of its inputs, so shard-by-shard evaluation followed
# by a union merge computes the same query (Section 3; the uniformity
# argument is Reynolds-style parametricity).  The classes below say
# *which* partition function each operator tolerates while keeping the
# per-shard work ledgers summable to the serial ledger — the contract
# ``engine/exec/shard.py`` consumes as its source of truth.

#: The node tolerates hash partitioning when its inputs are
#: co-partitioned on an equality key (a join column, or the whole
#: tuple for set operations); per-shard outputs stay disjoint and
#: aligned, so downstream weights and probe counts sum exactly.
HASH_PARTITIONABLE = "hash-partitionable"
#: Monotone and key-free: the node distributes over *any* disjoint
#: partition of its input (round-robin suffices), but its output
#: partition is unaligned — usable below weight-charging parents only
#: while outputs remain disjoint (e.g. injective maps).
ROUND_ROBIN_SAFE = "round-robin-safe"
#: No partition function preserves the work ledger (cross products
#: replicate a whole side per shard); the plan runs single-shard.
NON_PARTITIONABLE = "non-partitionable"

#: ``plan node type -> (class, justification in the paper's terms)``.
#: Node types absent from the table are :data:`NON_PARTITIONABLE`.
NODE_PARTITIONABILITY: dict[type, tuple[str, str]] = {
    Scan: (
        HASH_PARTITIONABLE,
        "a base relation accepts any disjoint partition; the partition "
        "key is chosen by the equality demands of the operators above",
    ),
    Select: (
        HASH_PARTITIONABLE,
        "sigma : forall X.(X->bool)->{X}->{X} is parametric: it "
        "preserves whatever partition its input carries, key or not",
    ),
    Project: (
        HASH_PARTITIONABLE,
        "pi commutes with union, and a partition on a *surviving* "
        "column keeps projected duplicates in one shard, so dedup per "
        "shard equals serial dedup (key-preserving projections only; "
        "other projections are safe only at the plan root)",
    ),
    MapNode: (
        ROUND_ROBIN_SAFE,
        "map(f) commutes with union for arbitrary f, so any disjoint "
        "split works; only an *injective* f keeps shard outputs "
        "disjoint, and no column key survives an opaque f",
    ),
    Union: (
        HASH_PARTITIONABLE,
        "union is fully generic/parametric: whole-tuple co-partition "
        "gives (L U R) restricted to each shard; unaligned disjoint "
        "inputs are still safe at the plan root",
    ),
    Intersect: (
        HASH_PARTITIONABLE,
        "membership is decided per tuple, so whole-tuple co-partition "
        "localizes every probe: L_i & R_i = (L & R)_i",
    ),
    Difference: (
        HASH_PARTITIONABLE,
        "difference is generic w.r.t. injective mappings, and a "
        "whole-tuple co-partition is injective per shard: "
        "L_i - R_i = (L - R)_i",
    ),
    Join: (
        HASH_PARTITIONABLE,
        "equi-join co-partitioned on the first join pair keeps every "
        "candidate pair in one shard, so cross-shard probes vanish and "
        "probe counts sum to the serial ledger; a key-free join is a "
        "product and falls to single-shard",
    ),
    Product: (
        NON_PARTITIONABLE,
        "|L_i| x weight(R) per shard would replicate R's weight "
        "charge; no disjoint split of both sides preserves the ledger",
    ),
}


@dataclass(frozen=True)
class RewriteRule:
    """A named local rewrite with its paper justification."""

    name: str
    justification: str
    apply: Callable[[Plan, Catalog], Optional[Plan]]

    def __str__(self) -> str:
        return f"{self.name}: {self.justification}"


def _push_map_through_union(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    if isinstance(plan, MapNode) and isinstance(plan.child, Union):
        union = plan.child
        return Union(
            MapNode(plan.fn_name, plan.fn, union.left, plan.injective),
            MapNode(plan.fn_name, plan.fn, union.right, plan.injective),
        )
    return None


def _push_map_through_diff(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    if (
        isinstance(plan, MapNode)
        and plan.injective
        and isinstance(plan.child, (Difference, Intersect))
    ):
        node = plan.child
        rebuilt = type(node)(
            MapNode(plan.fn_name, plan.fn, node.left, True),
            MapNode(plan.fn_name, plan.fn, node.right, True),
        )
        return rebuilt
    return None


def _push_project_through_union(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    if isinstance(plan, Project) and isinstance(plan.child, Union):
        union = plan.child
        return Union(
            Project(plan.columns, union.left),
            Project(plan.columns, union.right),
        )
    return None


def _push_project_through_diff(plan: Plan, catalog: Catalog) -> Optional[Plan]:
    if isinstance(plan, Project) and isinstance(
        plan.child, (Difference, Intersect)
    ):
        node = plan.child
        if projection_injective_on(
            catalog, (node.left, node.right), plan.columns
        ):
            return type(node)(
                Project(plan.columns, node.left),
                Project(plan.columns, node.right),
            )
    return None


def _push_select_through_union(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    if isinstance(plan, Select) and isinstance(
        plan.child, (Union, Difference, Intersect)
    ):
        node = plan.child
        return type(node)(
            Select(plan.predicate_name, plan.predicate, node.left),
            Select(plan.predicate_name, plan.predicate, node.right),
        )
    return None


def _push_select_below_project(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    # sigma_p(pi_cols(R)) cannot move below pi in general (p sees the
    # projected tuple); the profitable direction is pi above sigma:
    # pi_cols(sigma_p(R)) stays as is.  Nothing to do here; placeholder
    # intentionally removed from DEFAULT_RULES.
    return None


def _fuse_projects(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    if isinstance(plan, Project) and isinstance(plan.child, Project):
        inner = plan.child
        if any(i >= len(inner.columns) for i in plan.columns):
            # Ill-formed plan (outer projects a column the inner one
            # removed); leave it for the executor to report.
            return None
        fused = tuple(inner.columns[i] for i in plan.columns)
        return Project(fused, inner.child)
    return None


def _select_before_product(plan: Plan, _catalog: Catalog) -> Optional[Plan]:
    # sigma_p(A x B) with p touching only A's columns -> sigma_p(A) x B.
    # Column usage is not tracked for opaque predicates, so this rule
    # only fires for predicates registered with a column span.
    if (
        isinstance(plan, Select)
        and isinstance(plan.child, Product)
        and "@left" in plan.predicate_name
    ):
        product = plan.child
        return Product(
            Select(plan.predicate_name, plan.predicate, product.left),
            product.right,
        )
    return None


DEFAULT_RULES: tuple[RewriteRule, ...] = (
    RewriteRule(
        "push-map-through-union",
        "union is fully generic/parametric: commutes with map(f) for "
        "arbitrary f (Section 4.4)",
        _push_map_through_union,
    ),
    RewriteRule(
        "push-project-through-union",
        "parametricity of union at forall X.{X}*{X}->{X} with H = pi_1 "
        "(a structure-changing mapping; Section 4.4)",
        _push_project_through_union,
    ),
    RewriteRule(
        "push-project-through-difference",
        "difference is generic w.r.t. injective mappings; key constraint "
        "makes pi injective on the instances (employees/students example)",
        _push_project_through_diff,
    ),
    RewriteRule(
        "push-map-through-difference",
        "difference at forall X=: valid for f declared injective",
        _push_map_through_diff,
    ),
    RewriteRule(
        "push-select-through-union",
        "sigma : forall X.(X->bool)->{X}->{X} is parametric; the same "
        "predicate is preserved on both branches (Section 4.3)",
        _push_select_through_union,
    ),
    RewriteRule(
        "fuse-projections",
        "composition closure of fully generic queries (Prop 3.1)",
        _fuse_projects,
    ),
    RewriteRule(
        "select-before-product",
        "cross product is fully generic; a predicate over one factor "
        "commutes with forming the product",
        _select_before_product,
    ),
)
