"""Cardinality estimation and cost-based plan choice.

The rewrites of Section 4.4 are *sound* whenever their justifications
hold, but not always *profitable* — e.g. pushing a projection below a
highly selective difference duplicates projection work.  This module
adds the classical optimizer counterpart: estimate costs from catalog
statistics and keep a rewrite only when the estimate says it helps.
The estimates use the same width-weighted work model as the executor,
so estimated and measured costs are directly comparable (benchmarked in
``bench_ablation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as TMapping, Optional

from .constraints import Catalog
from .plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from .rewriter import Rewriter

__all__ = ["Stats", "estimate", "Estimate", "choose_plan"]

#: Default selectivity guesses (classical System R style).
_SELECT_SELECTIVITY = 0.33
_DIFF_SURVIVAL = 0.7
_INTERSECT_SURVIVAL = 0.3


@dataclass
class Stats:
    """Per-relation cardinality and width statistics."""

    rows: dict[str, int] = field(default_factory=dict)
    widths: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of_database(cls, relations: TMapping[str, object]) -> "Stats":
        """Collect exact stats from an in-memory database snapshot."""
        rows = {}
        widths = {}
        for name, relation in relations.items():
            rows[name] = len(relation)
            widths[name] = max((len(t) for t in relation), default=1)
        return cls(rows, widths)

    @classmethod
    def of_engine_database(cls, db) -> "Stats":
        """Stats straight from a :class:`~repro.engine.database.Database`.

        Uses declared arities from the catalog instead of walking every
        tuple — O(#relations), so cost-based plan choice stays cheap on
        large instances.  Undeclared relations fall back to a scan."""
        rows = {}
        widths = {}
        for name, relation in db.relations.items():
            rows[name] = len(relation)
            info = db.catalog.relations.get(name)
            if info is not None:
                widths[name] = info.arity
            else:
                widths[name] = max((len(t) for t in relation), default=1)
        return cls(rows, widths)


@dataclass
class Estimate:
    """Estimated output cardinality/width and cumulative work."""

    rows: float
    width: float
    work: float

    @property
    def weight(self) -> float:
        return self.rows * self.width


def estimate(plan: Plan, stats: Stats) -> Estimate:
    """Bottom-up cost estimation mirroring the executor's work model."""
    if isinstance(plan, Scan):
        rows = stats.rows.get(plan.relation, 0)
        width = stats.widths.get(plan.relation, 1)
        return Estimate(rows, width, 0.0)
    if isinstance(plan, Project):
        child = estimate(plan.child, stats)
        return Estimate(
            child.rows,  # conservatively: no duplicate collapse
            len(plan.columns),
            child.work + child.weight,
        )
    if isinstance(plan, Select):
        child = estimate(plan.child, stats)
        return Estimate(
            child.rows * _SELECT_SELECTIVITY,
            child.width,
            child.work + child.weight,
        )
    if isinstance(plan, MapNode):
        child = estimate(plan.child, stats)
        return Estimate(child.rows, child.width, child.work + child.weight)
    if isinstance(plan, Union):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        return Estimate(
            left.rows + right.rows,
            max(left.width, right.width),
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Difference):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        return Estimate(
            left.rows * _DIFF_SURVIVAL,
            left.width,
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Intersect):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        return Estimate(
            min(left.rows, right.rows) * _INTERSECT_SURVIVAL,
            left.width,
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Product):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        return Estimate(
            left.rows * right.rows,
            left.width + right.width,
            left.work + right.work + left.rows * right.weight + left.weight,
        )
    if isinstance(plan, Join):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        join_rows = (left.rows * right.rows) / max(
            right.rows, 1
        )  # one match per left row on a key join, heuristically
        return Estimate(
            join_rows,
            left.width + right.width,
            left.work + right.work + left.weight + right.weight + join_rows,
        )
    raise TypeError(f"unknown plan node: {plan!r}")


def choose_plan(
    plan: Plan,
    catalog: Catalog,
    stats: Stats,
    rewriter: Optional[Rewriter] = None,
) -> tuple[Plan, Estimate, Estimate]:
    """Rewrite then keep whichever of (original, rewritten) estimates
    cheaper.  Returns ``(chosen, original_estimate, rewritten_estimate)``.
    """
    rewriter = rewriter or Rewriter(catalog)
    rewritten = rewriter.optimize(plan)
    original_estimate = estimate(plan, stats)
    rewritten_estimate = estimate(rewritten, stats)
    chosen = (
        rewritten
        if rewritten_estimate.work <= original_estimate.work
        else plan
    )
    return chosen, original_estimate, rewritten_estimate
