"""Cardinality estimation and cost-based plan choice.

The rewrites of Section 4.4 are *sound* whenever their justifications
hold, but not always *profitable* — e.g. pushing a projection below a
highly selective difference duplicates projection work.  This module
adds the classical optimizer counterpart: estimate costs from catalog
statistics and keep a rewrite only when the estimate says it helps.
The estimates use the same width-weighted work model as the executor,
so estimated and measured costs are directly comparable (benchmarked in
``bench_ablation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as TMapping, Optional

from .constraints import Catalog
from .plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from .rewriter import Rewriter

__all__ = [
    "Stats",
    "estimate",
    "Estimate",
    "choose_plan",
    "MODE_COST",
    "ModeDecision",
    "choose_mode",
]

#: Default selectivity guesses (classical System R style).
_SELECT_SELECTIVITY = 0.33
_DIFF_SURVIVAL = 0.7
_INTERSECT_SURVIVAL = 0.3


def _clamp_selectivity(s: float) -> float:
    """Force a selectivity into (0, 1].

    Degenerate catalogs (empty relations, zero distinct counts, stats
    gathered mid-mutation) can otherwise drive a factor to 0, below, or
    NaN — and a zero selectivity propagates to zero/negative row counts
    that later divide or subtract into nonsense."""
    if not s > 0.0:  # catches 0, negatives and NaN in one comparison
        return 1e-6
    return min(s, 1.0)


@dataclass
class Stats:
    """Per-relation cardinality and width statistics."""

    rows: dict[str, int] = field(default_factory=dict)
    widths: dict[str, int] = field(default_factory=dict)
    #: ``relation -> column index -> distinct value count``.  Optional;
    #: when present, key-join estimates use real duplication factors
    #: instead of the one-match-per-row heuristic.
    distincts: dict[str, dict[int, int]] = field(default_factory=dict)

    @classmethod
    def of_database(cls, relations: TMapping[str, object]) -> "Stats":
        """Collect exact stats from an in-memory database snapshot."""
        rows = {}
        widths = {}
        for name, relation in relations.items():
            rows[name] = len(relation)
            widths[name] = max((len(t) for t in relation), default=1)
        return cls(rows, widths)

    @classmethod
    def from_database(cls, db) -> "Stats":
        """Exact stats from a live :class:`~repro.engine.database.Database`:
        real cardinalities, cached widths, and per-column distinct
        counts — not System-R default guesses.

        Cardinalities and widths come from the database's maintained
        physical state (O(#relations)); distinct counts are one pass
        per relation and are expected to be memoized by the caller
        (:meth:`Database.current_stats` caches per mutation
        generation)."""
        rows = {}
        widths = {}
        distincts = {}
        for name, relation in db.relations.items():
            rows[name] = len(relation)
            width = db.relation_width(name)
            if width is None:
                width = max(
                    (len(t) for t in relation if hasattr(t, "__len__")),
                    default=1,
                )
            widths[name] = max(width, 1)
            distincts[name] = db.column_distincts(name)
        return cls(rows, widths, distincts)

    @classmethod
    def of_engine_database(cls, db) -> "Stats":
        """Stats straight from a :class:`~repro.engine.database.Database`.

        Uses declared arities from the catalog instead of walking every
        tuple — O(#relations), so cost-based plan choice stays cheap on
        large instances.  Undeclared relations fall back to a scan."""
        rows = {}
        widths = {}
        for name, relation in db.relations.items():
            rows[name] = len(relation)
            info = db.catalog.relations.get(name)
            if info is not None:
                widths[name] = info.arity
            else:
                widths[name] = max((len(t) for t in relation), default=1)
        return cls(rows, widths)


@dataclass
class Estimate:
    """Estimated output cardinality/width and cumulative work."""

    rows: float
    width: float
    work: float

    @property
    def weight(self) -> float:
        return self.rows * self.width


def estimate(plan: Plan, stats: Stats) -> Estimate:
    """Bottom-up cost estimation mirroring the executor's work model
    (explicit stack, any depth — ``mode="auto"`` must cost the same
    deep chains the executors are stack-safe on)."""
    memo: dict[int, Estimate] = {}
    stack: list[tuple[Plan, bool]] = [(plan, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            memo[id(node)] = _estimate_node(node, memo, stats)
            continue
        if id(node) in memo:
            continue
        stack.append((node, True))
        for child in node.children():
            stack.append((child, False))
    return memo[id(plan)]


def _estimate_node(
    plan: Plan, memo: dict[int, Estimate], stats: Stats
) -> Estimate:
    """One node's estimate, children already in ``memo``."""
    if isinstance(plan, Scan):
        rows = max(stats.rows.get(plan.relation, 0), 0)
        width = max(stats.widths.get(plan.relation, 1), 1)
        return Estimate(rows, width, 0.0)
    if isinstance(plan, Project):
        child = memo[id(plan.child)]
        return Estimate(
            child.rows,  # conservatively: no duplicate collapse
            len(plan.columns),
            child.work + child.weight,
        )
    if isinstance(plan, Select):
        child = memo[id(plan.child)]
        return Estimate(
            child.rows * _clamp_selectivity(_SELECT_SELECTIVITY),
            child.width,
            child.work + child.weight,
        )
    if isinstance(plan, MapNode):
        child = memo[id(plan.child)]
        return Estimate(child.rows, child.width, child.work + child.weight)
    if isinstance(plan, Union):
        left = memo[id(plan.left)]
        right = memo[id(plan.right)]
        return Estimate(
            left.rows + right.rows,
            max(left.width, right.width),
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Difference):
        left = memo[id(plan.left)]
        right = memo[id(plan.right)]
        return Estimate(
            left.rows * _clamp_selectivity(_DIFF_SURVIVAL),
            left.width,
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Intersect):
        left = memo[id(plan.left)]
        right = memo[id(plan.right)]
        return Estimate(
            min(left.rows, right.rows)
            * _clamp_selectivity(_INTERSECT_SURVIVAL),
            left.width,
            left.work + right.work + left.weight + right.weight,
        )
    if isinstance(plan, Product):
        left = memo[id(plan.left)]
        right = memo[id(plan.right)]
        return Estimate(
            left.rows * right.rows,
            left.width + right.width,
            left.work + right.work + left.rows * right.weight + left.weight,
        )
    if isinstance(plan, Join):
        left = memo[id(plan.left)]
        right = memo[id(plan.right)]
        selectivity = None
        if (
            plan.on
            and isinstance(plan.left, Scan)
            and isinstance(plan.right, Scan)
        ):
            # Classical equi-join selectivity 1/max(d(l), d(r)) from
            # measured per-column distinct counts, when available.
            i0, j0 = plan.on[0]
            dl = stats.distincts.get(plan.left.relation, {}).get(i0)
            dr = stats.distincts.get(plan.right.relation, {}).get(j0)
            if dl and dr:
                selectivity = _clamp_selectivity(1.0 / max(dl, dr))
        if selectivity is not None:
            join_rows = left.rows * right.rows * selectivity
        else:
            join_rows = (left.rows * right.rows) / max(
                right.rows, 1
            )  # one match per left row on a key join, heuristically
        return Estimate(
            join_rows,
            left.width + right.width,
            left.work + right.work + left.weight + right.weight + join_rows,
        )
    raise TypeError(f"unknown plan node: {plan!r}")


def choose_plan(
    plan: Plan,
    catalog: Catalog,
    stats: Stats,
    rewriter: Optional[Rewriter] = None,
) -> tuple[Plan, Estimate, Estimate]:
    """Rewrite then keep whichever of (original, rewritten) estimates
    cheaper.  Returns ``(chosen, original_estimate, rewritten_estimate)``.
    """
    rewriter = rewriter or Rewriter(catalog)
    rewritten = rewriter.optimize(plan)
    original_estimate = estimate(plan, stats)
    rewritten_estimate = estimate(rewritten, stats)
    chosen = (
        rewritten
        if rewritten_estimate.work <= original_estimate.work
        else plan
    )
    return chosen, original_estimate, rewritten_estimate


# ----------------------------------------------------------------------
# Adaptive execution-mode choice (``Database.run(mode="auto")``).

#: Per-mode ``(work factor, fixed overhead)`` calibrated against the
#: BENCH_PR4/PR6 cold-path measurements: the factor scales the
#: estimated work (per-unit cost relative to the reference
#: interpreter), the overhead is the mode's fixed per-execution cost in
#: the same work units (plan annotation, pipeline setup, artifact
#: lookup).  Batch beats streaming cold; the compiled path has the
#: lowest per-unit cost but the highest fixed cost, so tiny plans still
#: run on the reference interpreter.
MODE_COST: dict[str, tuple[float, float]] = {
    "reference": (1.0, 0.0),
    "stream": (1.05, 30.0),
    "batch": (0.60, 60.0),
    "compiled": (0.25, 90.0),
    # Partition-parallel streaming over a 4-shard process pool: the
    # per-unit cost divides across workers (plus partition/merge and
    # result pickling), but the pool spin-up is a fixed cost orders of
    # magnitude above any in-process overhead — only plans whose
    # estimated work dwarfs it should ever shard.  ``Database.plan_mode``
    # additionally gates the candidate on partitionability.
    "sharded": (0.40, 200_000.0),
}


@dataclass(frozen=True)
class ModeDecision:
    """Outcome of :func:`choose_mode`: the chosen executor plus the
    per-candidate score table (estimated work × factor + overhead) that
    produced it, for ``explain``/tracing surfacing."""

    mode: str
    estimated_work: float
    scores: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "estimated_work": round(self.estimated_work, 3),
            "scores": {
                mode: round(score, 3)
                for mode, score in self.scores.items()
            },
        }


def choose_mode(
    plan: Plan,
    stats: Stats,
    *,
    candidates: tuple[str, ...] = (
        "reference",
        "stream",
        "batch",
        "compiled",
    ),
) -> ModeDecision:
    """Pick the cheapest execution mode for ``plan`` under ``stats``.

    Engine-free: callers restrict ``candidates`` to encode engine
    constraints (e.g. plans deeper than ``MAX_PIPELINE_DEPTH`` exclude
    ``"compiled"``, whose codegen would be pathological).  Ties break
    toward the earlier candidate."""
    if not candidates:
        raise ValueError("choose_mode needs at least one candidate mode")
    est = estimate(plan, stats)
    scores = {}
    for mode in candidates:
        factor, overhead = MODE_COST[mode]
        scores[mode] = est.work * factor + overhead
    chosen = min(candidates, key=scores.__getitem__)
    return ModeDecision(chosen, est.work, scores)
