"""Schema (arity) inference for plans.

"The type could be found using type inference, or could be verified
using type checking" (Section 4.2) — for the plan algebra the relevant
type is the output schema.  :func:`infer_arity` computes it bottom-up
from the catalog's declared arities and *rejects ill-formed plans
statically*: projections out of range, union-incompatible operands,
join columns out of bounds — errors that would otherwise surface as
IndexErrors mid-execution.
"""

from __future__ import annotations

from ..types.ast import Product, SetType, Type, TypeVar
from .constraints import Catalog
from .plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product as PlanProduct,
    Project,
    Scan,
    Select,
    Union,
)

__all__ = ["SchemaInferenceError", "infer_arity", "plan_type", "validate_plan"]


class SchemaInferenceError(Exception):
    """Raised when a plan is schema-inconsistent."""


def infer_arity(plan: Plan, catalog: Catalog) -> int:
    """Infer the output arity of ``plan``; raise on inconsistency."""
    if isinstance(plan, Scan):
        if plan.relation not in catalog:
            raise SchemaInferenceError(
                f"unknown relation {plan.relation!r}"
            )
        return catalog[plan.relation].arity
    if isinstance(plan, Project):
        child = infer_arity(plan.child, catalog)
        out_of_range = [c for c in plan.columns if not 0 <= c < child]
        if out_of_range:
            raise SchemaInferenceError(
                f"projection columns {sorted(c + 1 for c in out_of_range)} "
                f"out of range for arity {child} in {plan}"
            )
        return len(plan.columns)
    if isinstance(plan, (Union, Difference, Intersect)):
        left = infer_arity(plan.left, catalog)
        right = infer_arity(plan.right, catalog)
        if left != right:
            raise SchemaInferenceError(
                f"operands of {type(plan).__name__} have arities "
                f"{left} != {right} in {plan}"
            )
        return left
    if isinstance(plan, PlanProduct):
        return infer_arity(plan.left, catalog) + infer_arity(
            plan.right, catalog
        )
    if isinstance(plan, Join):
        left = infer_arity(plan.left, catalog)
        right = infer_arity(plan.right, catalog)
        for i, j in plan.on:
            if not (0 <= i < left and 0 <= j < right):
                raise SchemaInferenceError(
                    f"join columns ({i + 1}, {j + 1}) out of range "
                    f"for arities ({left}, {right}) in {plan}"
                )
        return left + right
    if isinstance(plan, Select):
        return infer_arity(plan.child, catalog)
    if isinstance(plan, MapNode):
        # Opaque function: the output arity is not statically known;
        # pass the child's through as the best available bound.
        return infer_arity(plan.child, catalog)
    raise SchemaInferenceError(f"unknown plan node: {plan!r}")


def plan_type(plan: Plan, catalog: Catalog) -> Type:
    """The inferred output type, as a set of tuples over one abstract
    domain — the shape the genericity machinery consumes."""
    arity = infer_arity(plan, catalog)
    x = TypeVar("X")
    return SetType(Product(tuple(x for _ in range(arity))))


def validate_plan(plan: Plan, catalog: Catalog) -> bool:
    """True iff the plan is schema-consistent."""
    try:
        infer_arity(plan, catalog)
        return True
    except SchemaInferenceError:
        return False
