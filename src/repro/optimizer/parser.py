"""A concrete syntax for logical plans.

Lets examples, tests and the CLI write plans as text:

.. code-block:: text

    plan    ::= binary
    binary  ::= unary (('U' | '-' | '&' | 'x') unary)*     left-assoc
    unary   ::= 'pi' '[' cols ']' '(' plan ')'
              | 'sigma' '[' NAME cmp VALUE ']' '(' plan ')'
              | '(' plan ')'
              | IDENT                                       scan
    cols    ::= INT (',' INT)*                              1-based
    cmp     ::= '=' | '<' | '>'

Selections reference columns by 1-based ``$i`` or by position name
``cN``; values are integer or quoted-string literals.

Examples::

    parse_plan("pi[1](employees - students)")
    parse_plan("sigma[$1=1001](employees) U students")
"""

from __future__ import annotations

import re
from typing import Callable

from ..types.values import Tup
from .plan import Difference, Intersect, Plan, Product, Project, Scan, Select, Union

__all__ = ["parse_plan", "PlanParseError"]


class PlanParseError(Exception):
    """Raised on malformed plan text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<PI>pi\b)
  | (?P<SIGMA>sigma\b)
  | (?P<UNION>U\b)
  | (?P<CROSS>x\b)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<NUMBER>-?\d+)
  | (?P<STRING>'[^']*')
  | (?P<DOLLAR>\$)
  | (?P<LBRACK>\[)
  | (?P<RBRACK>\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<MINUS>-)
  | (?P<AMP>&)
  | (?P<EQ>=)
  | (?P<LT><)
  | (?P<GT>>)
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str):
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PlanParseError(f"bad character {text[pos]!r} at {pos}")
        if match.lastgroup != "WS":
            yield match.lastgroup, match.group()
        pos = match.end()
    yield "EOF", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str) -> str:
        got, value = self._advance()
        if got != kind:
            raise PlanParseError(
                f"expected {kind}, got {got} ({value!r}) in {self._text!r}"
            )
        return value

    def parse(self) -> Plan:
        plan = self._binary()
        self._expect("EOF")
        return plan

    def _binary(self) -> Plan:
        left = self._unary()
        constructors = {
            "UNION": Union,
            "MINUS": Difference,
            "AMP": Intersect,
            "CROSS": Product,
        }
        while self._peek()[0] in constructors:
            kind, _ = self._advance()
            right = self._unary()
            left = constructors[kind](left, right)
        return left

    def _unary(self) -> Plan:
        kind, value = self._peek()
        if kind == "PI":
            self._advance()
            self._expect("LBRACK")
            columns = [int(self._expect("NUMBER")) - 1]
            while self._peek()[0] == "COMMA":
                self._advance()
                columns.append(int(self._expect("NUMBER")) - 1)
            self._expect("RBRACK")
            self._expect("LPAREN")
            child = self._binary()
            self._expect("RPAREN")
            if any(c < 0 for c in columns):
                raise PlanParseError("projection columns are 1-based")
            return Project(tuple(columns), child)
        if kind == "SIGMA":
            self._advance()
            self._expect("LBRACK")
            predicate_name, predicate = self._predicate()
            self._expect("RBRACK")
            self._expect("LPAREN")
            child = self._binary()
            self._expect("RPAREN")
            return Select(predicate_name, predicate, child)
        if kind == "LPAREN":
            self._advance()
            plan = self._binary()
            self._expect("RPAREN")
            return plan
        if kind == "IDENT":
            self._advance()
            return Scan(value)
        raise PlanParseError(f"unexpected token {value!r} in {self._text!r}")

    def _predicate(self) -> tuple[str, Callable[[Tup], bool]]:
        self._expect("DOLLAR")
        column = int(self._expect("NUMBER")) - 1
        if column < 0:
            raise PlanParseError("selection columns are 1-based")
        op_kind, op_text = self._advance()
        comparators = {
            "EQ": lambda a, b: a == b,
            "LT": lambda a, b: a < b,
            "GT": lambda a, b: a > b,
        }
        if op_kind not in comparators:
            raise PlanParseError(f"unknown comparator {op_text!r}")
        kind, value = self._advance()
        if kind == "NUMBER":
            literal: object = int(value)
        elif kind == "STRING":
            literal = value[1:-1]
        elif kind == "DOLLAR":
            other = int(self._expect("NUMBER")) - 1
            compare = comparators[op_kind]
            name = f"${column + 1}{op_text}${other + 1}"
            return name, lambda t: compare(t[column], t[other])
        else:
            raise PlanParseError(f"bad literal {value!r}")
        compare = comparators[op_kind]
        name = f"${column + 1}{op_text}{value}"
        return name, lambda t: compare(t[column], literal)


def parse_plan(text: str) -> Plan:
    """Parse a plan from its concrete syntax."""
    return _Parser(text).parse()
