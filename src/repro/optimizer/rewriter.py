"""Rule-driven plan rewriter with equivalence verification.

The rewriter applies rules bottom-up to a fixpoint (with a safety
bound), keeping a trace of which rules fired where — the trace is how
the experiments connect each rewrite back to its genericity /
parametricity justification.

Because the rules' side conditions are discharged from *declared*
constraints, :func:`verify_equivalence` re-checks every rewritten plan
against the original on generated databases; the Section 4.4 experiment
also runs the unsound variant (projection through difference *without*
the key) to show the verifier catching it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as TMapping, Optional, Sequence

from ..types.values import CVSet
from .constraints import Catalog
from .plan import Plan
from .rules import DEFAULT_RULES, RewriteRule

__all__ = ["RewriteTrace", "Rewriter", "verify_equivalence"]

_MAX_PASSES = 32


@dataclass
class RewriteTrace:
    """A record of one applied rewrite."""

    rule: RewriteRule
    before: Plan
    after: Plan

    def __str__(self) -> str:
        return f"{self.rule.name}: {self.before}  =>  {self.after}"


@dataclass
class Rewriter:
    """Applies a rule set bottom-up to a fixpoint."""

    catalog: Catalog
    rules: Sequence[RewriteRule] = DEFAULT_RULES
    trace: list[RewriteTrace] = field(default_factory=list)

    # Work-item tags for the explicit-stack traversal below.
    _VISIT, _COMBINE, _APPLY = 0, 1, 2

    def _rewrite_node(self, plan: Plan) -> Plan:
        """Bottom-up rewrite of one tree, without recursion.

        Equivalent to the old recursive form: rewrite the children,
        recombine, then apply rules at the node until none fires; when a
        rule fires, the rewritten node's children are themselves
        rewritten (they may expose new opportunities) before the rule
        loop restarts at the recombined node.  An explicit stack keeps
        plans of arbitrary depth safe from ``RecursionError``.
        """
        stack: list[tuple[int, Plan]] = [(self._VISIT, plan)]
        results: list[Plan] = []
        while stack:
            action, node = stack.pop()
            if action == self._VISIT:
                children = node.children()
                if children:
                    stack.append((self._COMBINE, node))
                    for child in reversed(children):
                        stack.append((self._VISIT, child))
                else:
                    stack.append((self._APPLY, node))
            elif action == self._COMBINE:
                n = len(node.children())
                children = tuple(results[-n:])
                del results[-n:]
                stack.append((self._APPLY, node.with_children(children)))
            else:  # _APPLY: run the rule loop at a recombined node
                fired = False
                for rule in self.rules:
                    result = rule.apply(node, self.catalog)
                    if result is not None and result != node:
                        self.trace.append(RewriteTrace(rule, node, result))
                        # Rewritten node may expose new opportunities
                        # below: rewrite its children, then re-enter the
                        # rule loop on the recombined node.
                        children = result.children()
                        if children:
                            stack.append((self._COMBINE, result))
                            for child in reversed(children):
                                stack.append((self._VISIT, child))
                        else:
                            stack.append((self._APPLY, result))
                        fired = True
                        break
                if not fired:
                    results.append(node)
        return results.pop()

    def optimize(self, plan: Plan) -> Plan:
        """Rewrite ``plan`` to a fixpoint; the trace records each step."""
        self.trace = []
        current = plan
        for _ in range(_MAX_PASSES):
            before = len(self.trace)
            current = self._rewrite_node(current)
            if len(self.trace) == before:
                return current
        return current

    def explain(self) -> list[str]:
        """Human-readable audit of the applied rewrites with their
        paper justifications."""
        return [
            f"{t.rule.name} [{t.rule.justification}]" for t in self.trace
        ]


def verify_equivalence(
    original: Plan,
    rewritten: Plan,
    databases: Sequence[TMapping[str, CVSet]],
    cache=None,
) -> Optional[TMapping[str, CVSet]]:
    """Check both plans agree on every database; return the first
    disagreeing database (a counterexample) or ``None``.

    Runs on the streaming executor; pass a shared
    :class:`~repro.engine.exec.PlanCache` so sub-plans common to both
    plans (and to other verification sweeps over the same databases)
    execute once.
    """
    # Imported lazily: repro.engine imports this module at package
    # init, so a top-level import would be circular.
    from ..engine.exec import execute_streaming

    for db in databases:
        original_value = execute_streaming(original, db, cache=cache).value
        rewritten_value = execute_streaming(rewritten, db, cache=cache).value
        if original_value != rewritten_value:
            return db
    return None
