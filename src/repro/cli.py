"""Command-line interface.

.. code-block:: text

    python -m repro list                      # experiment ids
    python -m repro run E-2.2 [E-2.6 ...]     # run experiments, print tables
    python -m repro run --all [--jobs N]
    python -m repro classify sigma_eq [--jobs N]   # classify an operation
    python -m repro optimize "pi[1](employees - students)"
    python -m repro explain "pi[1](employees - students)" [--mode M]
    python -m repro fuzz --seeds 200 [--jobs N]    # differential fuzz
    python -m repro chaos --seeds 200         # fuzz under injected faults
    python -m repro recover state/ [--json]   # replay a WAL directory
    python -m repro bench [--out FILE] [--quick]   # benchmark suites
    python -m repro writeup [path]            # regenerate EXPERIMENTS.md

``explain`` runs a plan on the demo HR database under the tracer and
prints an EXPLAIN ANALYZE-style per-operator tree (rows, work, cache
activity, index/bulk shortcuts, wall time) for one executor mode
(including ``compiled`` and cost-model-driven ``auto``) or all of them
side by side; ``--json`` emits the same trees as JSON and
``--warm N`` pre-runs the plan N times so cache hits show up.

``recover`` rebuilds a database from a write-ahead-logged durability
directory (checkpoint + committed WAL suffix; see
:mod:`repro.durability`) and prints the recovery report with its span
tree; ``explain --wal DIR`` and ``optimize --wal DIR`` run their plan
against a recovered database instead of the demo HR one.

``classify`` accepts the named operations of the built-in catalog;
``optimize`` runs the rewriter against the demo HR catalog and prints
the trace with its genericity/parametricity justifications.  Every
``--jobs N`` shards independent work units across ``N`` worker
processes (:mod:`repro.parallel`) with output byte-identical to the
serial run.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Optional, Sequence

from .algebra.operators import (
    eq_adom,
    even_query,
    hat_select_eq,
    projection,
    select_eq,
    self_compose,
    self_cross,
    union_op,
)
from .algebra.query import Query

__all__ = ["main", "OPERATION_CATALOG"]

#: Named operations the ``classify`` subcommand understands.
OPERATION_CATALOG: dict[str, Callable[[], Query]] = {
    "projection": lambda: projection((0,), 2),
    "sigma_eq": lambda: select_eq(0, 1, 2),
    "sigma_hat": lambda: hat_select_eq(0, 1, 2),
    "cross": self_cross,
    "compose": self_compose,
    "union": union_op,
    "eq_adom": eq_adom,
    "even": even_query,
}


def _cmd_list(_args: argparse.Namespace) -> int:
    from .experiments.registry import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        print(exp_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.registry import EXPERIMENTS, run_all
    from .experiments.report import render

    ids = list(EXPERIMENTS) if args.all else args.ids
    if not ids:
        print("no experiment ids given (use --all)", file=sys.stderr)
        return 2
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id}", file=sys.stderr)
            return 2
    results = run_all(ids, jobs=args.jobs)
    failures = 0
    for result in results:
        print(render(result))
        print()
        failures += 0 if result.matches_paper else 1
    if failures:
        print(f"{failures} experiment(s) diverged from the paper",
              file=sys.stderr)
    return 1 if failures else 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from .genericity.classify import classify
    from .mappings.extensions import REL, STRONG

    if args.operation not in OPERATION_CATALOG:
        names = ", ".join(sorted(OPERATION_CATALOG))
        print(f"unknown operation; choose from: {names}", file=sys.stderr)
        return 2
    if args.jobs > 1:
        # Parallel path: shard the (spec, mode) grid across processes.
        # Renders the exact text of the serial path below.
        from .parallel import render_verdicts, sweep_invariance

        verdicts = sweep_invariance(
            [args.operation], trials=args.trials, jobs=args.jobs
        )
        print(render_verdicts(verdicts))
        return 0
    query = OPERATION_CATALOG[args.operation]()
    row = classify(query, trials=args.trials)
    print(f"classification of {query.name} : "
          f"{query.input_type} -> {query.output_type}")
    for verdict in row.verdicts:
        print(f"  {verdict.spec.name:18} {verdict.mode:6} {verdict.label()}")
    for mode in (REL, STRONG):
        tightest = row.tightest(mode)
        print(f"  tightest {mode} class: "
              f"{tightest.name if tightest else '(none in lattice)'}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from .engine.workload import hr_database
    from .optimizer.cost import Stats, choose_plan
    from .optimizer.parser import PlanParseError, parse_plan
    from .optimizer.rewriter import Rewriter

    try:
        plan = parse_plan(args.plan)
    except PlanParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    if args.wal:
        from .durability import recover

        db, recovery = recover(args.wal)
        print(recovery.summary())
        print()
    else:
        db = hr_database(random.Random(args.seed), employees=args.size,
                         students=args.size * 2 // 3,
                         overlap=args.size // 4)
    from .optimizer.schema_infer import SchemaInferenceError, infer_arity

    try:
        infer_arity(plan, db.catalog)
    except SchemaInferenceError as error:
        print(f"schema error: {error}", file=sys.stderr)
        return 2
    rewriter = Rewriter(db.catalog)
    stats = Stats.from_database(db)
    chosen, before, after = choose_plan(plan, db.catalog, stats, rewriter)
    print(f"original : {plan}")
    print(f"rewritten: {rewriter.optimize(plan)}")
    for line in rewriter.explain():
        print(f"  applied: {line}")
    print(f"estimated work: {before.work:.0f} -> {after.work:.0f}")
    print(f"chosen   : {chosen}")
    result = db.run(chosen)
    print(f"answer ({len(result.value)} rows, measured work {result.work})")
    if args.show_rows:
        for row in sorted(result.value, key=repr)[: args.show_rows]:
            print("  ", row)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .engine.workload import hr_database
    from .obs import MODES, explain
    from .optimizer.parser import PlanParseError, parse_plan

    try:
        plan = parse_plan(args.plan)
    except PlanParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    recovery = None
    if args.wal:
        from .durability import recover

        db, recovery = recover(args.wal)
    else:
        db = hr_database(random.Random(args.seed), employees=args.size,
                         students=args.size * 2 // 3,
                         overlap=args.size // 4)
    from .optimizer.schema_infer import SchemaInferenceError, infer_arity

    try:
        infer_arity(plan, db.catalog)
    except SchemaInferenceError as error:
        print(f"schema error: {error}", file=sys.stderr)
        return 2
    for _ in range(args.warm):
        db.run(plan)
    modes = MODES if args.mode == "all" else (args.mode,)
    reports = [
        explain(plan, db, mode=mode, shards=args.shards) for mode in modes
    ]
    if args.json:
        explains = [r.to_dict() for r in reports]
        if recovery is not None:
            print(json.dumps(
                {"recovery": recovery.to_dict(), "explains": explains},
                indent=2,
            ))
        else:
            print(json.dumps(explains, indent=2))
        return 0
    if recovery is not None:
        print(recovery.render())
        print()
    for i, report in enumerate(reports):
        if i:
            print()
        print(report.render())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .engine.fuzz import run_fuzz

    scenarios = tuple(args.scenarios) if args.scenarios else None
    report = run_fuzz(
        args.seeds,
        base_seed=args.base_seed,
        deep_every=args.deep_every,
        scenarios=scenarios,
        jobs=args.jobs,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .robustness import run_chaos

    report = run_chaos(
        args.seeds,
        base_seed=args.base_seed,
        crash_every=args.crash_every,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .durability import recover
    from .engine.serialize import SerializeError, save_database

    try:
        db, report = recover(args.directory)
    except (OSError, SerializeError) as error:
        print(f"recover failed: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.dump:
        save_database(db, args.dump)
        if not args.json:
            print(f"recovered snapshot written to {args.dump}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    argv = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.skip_eperf:
        argv.append("--skip-eperf")
    argv += ["--jobs", str(args.jobs)]
    return bench_main(argv)


def _cmd_writeup(args: argparse.Namespace) -> int:
    from .experiments.writeup import main as writeup_main

    return writeup_main([args.path] if args.path else [])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On Genericity and Parametricity (PODS '96), executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(
        fn=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="*", help="experiment ids")
    run_parser.add_argument("--all", action="store_true")
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (results identical to --jobs 1)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    classify_parser = sub.add_parser(
        "classify", help="classify a catalog operation"
    )
    classify_parser.add_argument("operation")
    classify_parser.add_argument("--trials", type=int, default=30)
    classify_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the lattice sweep (same output)",
    )
    classify_parser.set_defaults(fn=_cmd_classify)

    optimize_parser = sub.add_parser(
        "optimize", help="parse, rewrite and run a plan on the demo HR db"
    )
    optimize_parser.add_argument("plan")
    optimize_parser.add_argument("--size", type=int, default=60)
    optimize_parser.add_argument("--seed", type=int, default=0)
    optimize_parser.add_argument("--show-rows", type=int, default=0)
    optimize_parser.add_argument(
        "--wal", default=None, metavar="DIR",
        help="run against a database recovered from this durability "
        "directory instead of the demo HR db",
    )
    optimize_parser.set_defaults(fn=_cmd_optimize)

    explain_parser = sub.add_parser(
        "explain",
        help="EXPLAIN ANALYZE a plan on the demo HR db (traced run)",
    )
    explain_parser.add_argument(
        "plan", nargs="?", default="pi[1](employees - students)",
        help="plan text (default: the README's demo query)",
    )
    explain_parser.add_argument(
        "--mode",
        choices=(
            "all", "reference", "stream", "batch", "compiled", "sharded",
            "auto",
        ),
        default="all",
        help="executor mode, or 'all' for every mode (default)",
    )
    explain_parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for mode=sharded (default: executor default)",
    )
    explain_parser.add_argument("--size", type=int, default=60)
    explain_parser.add_argument("--seed", type=int, default=0)
    explain_parser.add_argument(
        "--warm", type=int, default=0,
        help="pre-run the plan N times so cache hits are visible",
    )
    explain_parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    explain_parser.add_argument(
        "--wal", default=None, metavar="DIR",
        help="explain against a database recovered from this "
        "durability directory (prints the recovery report first)",
    )
    explain_parser.set_defaults(fn=_cmd_explain)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differentially fuzz the streaming engine vs the reference",
    )
    fuzz_parser.add_argument("--seeds", type=int, default=50)
    fuzz_parser.add_argument("--base-seed", type=int, default=0)
    fuzz_parser.add_argument(
        "--deep-every", type=int, default=10,
        help="run the deep-chain scenario every Nth seed (0 disables)",
    )
    fuzz_parser.add_argument(
        "--scenarios", nargs="*", default=None,
        help="restrict to named scenarios (default: all)",
    )
    fuzz_parser.add_argument(
        "--jobs", type=int, default=1,
        help="shard seeds across worker processes (same report)",
    )
    fuzz_parser.set_defaults(fn=_cmd_fuzz)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run the fuzz matrix under injected faults (degradation "
        "must absorb every fault with zero divergences)",
    )
    chaos_parser.add_argument("--seeds", type=int, default=50)
    chaos_parser.add_argument("--base-seed", type=int, default=0)
    chaos_parser.add_argument(
        "--crash-every", type=int, default=25,
        help="run the worker-crash scenario every Nth seed (0 disables)",
    )
    chaos_parser.set_defaults(fn=_cmd_chaos)

    recover_parser = sub.add_parser(
        "recover",
        help="rebuild a database from a WAL durability directory "
        "(checkpoint + committed log suffix) and print the report",
    )
    recover_parser.add_argument(
        "directory", help="durability directory (wal.jsonl + checkpoint)"
    )
    recover_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    recover_parser.add_argument(
        "--dump", default=None, metavar="FILE",
        help="also save the recovered database snapshot to FILE",
    )
    recover_parser.set_defaults(fn=_cmd_recover)

    bench_parser = sub.add_parser(
        "bench", help="run the benchmark suites and write a BENCH json"
    )
    bench_parser.add_argument(
        "--out", default="BENCH_PR10.json",
        help="output path (default: BENCH_PR10.json)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats, for CI smoke",
    )
    bench_parser.add_argument(
        "--skip-eperf", action="store_true",
        help="skip the pytest-based micro-benchmark tier",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel suites (0 = all cores)",
    )
    bench_parser.set_defaults(fn=_cmd_bench)

    writeup_parser = sub.add_parser(
        "writeup", help="regenerate EXPERIMENTS.md"
    )
    writeup_parser.add_argument("path", nargs="?", default="")
    writeup_parser.set_defaults(fn=_cmd_writeup)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
