"""Mapping constructors for function and quantified types (Section 4.1).

* :class:`FuncRel` realizes Definition 4.2: ``(K -> K')(f, f')`` iff
  whenever ``K(x, x')`` then ``K'(f(x), f'(x'))``.  Deciding this needs
  the pairs of ``K`` to be enumerable; a :class:`Budget` bounds the
  enumeration.
* :class:`ForAllRel` realizes Definition 4.3 *empirically*: two
  polymorphic values are related iff for every candidate mapping ``H``
  in a supplied test family, their components at the related types are
  related by ``T(H)``.  The universal quantifier over *all* mappings is
  approximated by this family — the standard move for executable
  parametricity checking (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..types.ast import ForAll, FuncType, Type
from .mapping import Budget, Rel

__all__ = ["FuncRel", "ForAllRel", "PolyValue"]


class FuncRel(Rel):
    """``K -> K'`` on functions (Definition 4.2).

    The related "functions" are Python callables taking and returning
    complex values.  With ``K = K'`` and ``f = f'`` this states that
    ``f`` is invariant under ``K`` (Definition 2.9) — the bridge the
    paper draws between genericity and parametricity.
    """

    def __init__(self, arg_rel: Rel, result_rel: Rel) -> None:
        self.arg_rel = arg_rel
        self.result_rel = result_rel
        self.source = FuncType(arg_rel.source, result_rel.source)
        self.target = FuncType(arg_rel.target, result_rel.target)

    def holds(self, f, g, budget: Optional[Budget] = None) -> bool:
        for x, y in self.arg_rel.pairs(budget):
            try:
                fx = f(x)
                gy = g(y)
            except Exception:
                # A function undefined on a related input cannot be
                # certified related; treat as failure, mirroring the
                # paper's "legal inputs" proviso conservatively.
                return False
            result = self.result_rel
            if isinstance(result, (FuncRel, ForAllRel)):
                ok = result.holds(fx, gy, budget)
            else:
                ok = result.holds(fx, gy)
            if not ok:
                return False
        return True

    def witness_violation(self, f, g, budget: Optional[Budget] = None):
        """Return a counterexample pair ``(x, y)`` or ``None``."""
        for x, y in self.arg_rel.pairs(budget):
            try:
                fx, gy = f(x), g(y)
            except Exception:
                return x, y
            result = self.result_rel
            if isinstance(result, (FuncRel, ForAllRel)):
                ok = result.holds(fx, gy, budget)
            else:
                ok = result.holds(fx, gy)
            if not ok:
                return x, y
        return None

    def pairs(self, budget: Optional[Budget] = None):
        """Enumerate related function pairs between the finite carriers.

        Needed when a function type occurs in argument position — e.g.
        the predicate argument of the paper's ``sigma``; delegated to
        :func:`repro.mappings.carriers.enumerate_function_pairs`.
        """
        from .carriers import enumerate_function_pairs

        return enumerate_function_pairs(self, budget)


class PolyValue:
    """A polymorphic value: a family of components indexed by types.

    Section 4.2's semantic domain interprets a polymorphic function as a
    collection of alpha-components ``f[alpha]``.  ``instantiate`` is a
    callable from a monomorphic :class:`Type` to the component value.
    """

    def __init__(self, instantiate: Callable[[Type], object], type_: Type) -> None:
        self.instantiate = instantiate
        self.type = type_

    def __getitem__(self, t: Type):
        return self.instantiate(t)

    def __repr__(self) -> str:
        return f"PolyValue({self.type})"


class ForAllRel(Rel):
    """``forall X. T(X)`` as a relation on polymorphic values (Def 4.3).

    ``candidates`` is the finite family of triples
    ``(alpha, beta, H : alpha x beta)`` over which the universal
    quantifier is tested; ``body_builder(H)`` must return the relation
    ``T(H)`` between ``T(alpha)`` and ``T(beta)``.
    """

    def __init__(
        self,
        type_: ForAll,
        candidates: Sequence[tuple[Type, Type, Rel]],
        body_builder: Callable[[Rel], Rel],
    ) -> None:
        self.source = type_
        self.target = type_
        self.candidates = list(candidates)
        self.body_builder = body_builder

    def holds(self, f, g, budget: Optional[Budget] = None) -> bool:
        return self.witness_violation(f, g, budget) is None

    def witness_violation(self, f, g, budget: Optional[Budget] = None):
        """Return a failing ``(alpha, beta, H)`` triple, or ``None``."""
        for alpha, beta, h in self.candidates:
            body = self.body_builder(h)
            f_alpha = f[alpha] if isinstance(f, PolyValue) else f
            g_beta = g[beta] if isinstance(g, PolyValue) else g
            if isinstance(body, (FuncRel, ForAllRel)):
                ok = body.holds(f_alpha, g_beta, budget)
            else:
                ok = body.holds(f_alpha, g_beta)
            if not ok:
                return alpha, beta, h
        return None
