"""Relational mappings and their extensions (paper Sections 2 and 4.1)."""

from .extensions import (
    REL,
    STRONG,
    BagRelExt,
    BagStrongExt,
    ExtensionMode,
    ListRel,
    ProductRel,
    SetRelExt,
    SetStrongExt,
    extend_along,
    extend_family,
)
from .families import (
    ConstantSpec,
    MappingFamily,
    preserves_constant,
    preserves_function,
    preserves_predicate,
    strictly_preserves_constant,
)
from .function_maps import ForAllRel, FuncRel, PolyValue
from .generators import (
    MAPPING_CLASSES,
    all_mappings_between,
    random_bijective_mapping,
    random_domain,
    random_family,
    random_functional_mapping,
    random_injective_mapping,
    random_mapping,
    random_mapping_in_class,
    random_relation_value,
    random_total_surjective_mapping,
    random_value,
)
from .mapping import (
    Budget,
    ConstantGraphRel,
    IdentityRel,
    Mapping,
    Rel,
    Unenumerable,
    identity_on,
    mapping_from_function,
    mapping_from_pairs,
)

__all__ = [name for name in dir() if not name.startswith("_")]
