"""Relational mappings between domains (paper Section 2.2).

A *mapping* in the paper's sense is a typed binary relation between two
domains — not required to be functional, injective, total or surjective.
This module provides:

* the abstract :class:`Rel` protocol shared by base mappings and all
  their extensions to complex types;
* :class:`Mapping` — a finite, explicitly enumerated base mapping with
  the classical property tests (functional / injective / total /
  surjective), composition and inverse;
* :class:`IdentityRel` — the identity mapping ``I_b`` on a domain, used
  for base-type leaves (Section 4.1) and for ``bool`` (Section 2.5).

Enumeration of extension mappings can be infinite (e.g. lists of all
lengths), so enumeration-style queries take an :class:`Budget` that
bounds the search; exceeding it raises :class:`Unenumerable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..types.ast import Type
from ..types.values import Value

__all__ = [
    "Rel",
    "Mapping",
    "IdentityRel",
    "ConstantGraphRel",
    "Budget",
    "Unenumerable",
    "identity_on",
    "mapping_from_function",
    "mapping_from_pairs",
]


class Unenumerable(Exception):
    """Raised when a relation cannot be enumerated within the budget."""


@dataclass
class Budget:
    """Bounds for enumerating extension relations.

    ``max_list_len`` bounds list lengths, ``max_set_size`` set/bag
    cardinalities, and ``max_pairs`` the total number of pairs any
    single enumeration may produce.
    """

    max_list_len: int = 3
    max_set_size: int = 3
    max_pairs: int = 20_000


class Rel:
    """A typed binary relation between two (possibly complex) domains.

    Subclasses implement :meth:`holds`; where mathematically finite they
    also implement :meth:`images`, :meth:`preimages` and :meth:`pairs`.
    """

    source: Type
    target: Type

    def holds(self, x: Value, y: Value) -> bool:
        """True iff the pair ``(x, y)`` is in the relation."""
        raise NotImplementedError

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        """Yield every ``y`` with ``holds(x, y)``."""
        raise Unenumerable(f"{type(self).__name__} cannot enumerate images")

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        """Yield every ``x`` with ``holds(x, y)``."""
        raise Unenumerable(f"{type(self).__name__} cannot enumerate preimages")

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        """Yield every related pair ``(x, y)``."""
        raise Unenumerable(f"{type(self).__name__} cannot enumerate pairs")

    def inverse(self) -> "Rel":
        """The inverse relation (Section 2.2: inverses of mappings are
        mappings, unlike inverses of functions)."""
        return _InverseRel(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.source} x {self.target})"


class _InverseRel(Rel):
    """Generic inverse wrapper; ``inverse`` of an inverse unwraps."""

    def __init__(self, base: Rel) -> None:
        self._base = base
        self.source = base.target
        self.target = base.source

    def holds(self, x: Value, y: Value) -> bool:
        return self._base.holds(y, x)

    def images(self, x, budget=None):
        return self._base.preimages(x, budget)

    def preimages(self, y, budget=None):
        return self._base.images(y, budget)

    def pairs(self, budget=None):
        for a, b in self._base.pairs(budget):
            yield b, a

    def inverse(self) -> Rel:
        return self._base


class Mapping(Rel):
    """A finite base mapping: an explicit set of typed pairs.

    ``source_domain``/``target_domain`` optionally fix the full domains
    the mapping lives between, enabling the totality and surjectivity
    tests of Proposition 2.8 / Section 3.3.  When omitted they default
    to the active domain/codomain of the pair set.
    """

    def __init__(
        self,
        pairs: Iterable[tuple[Value, Value]],
        source: Type,
        target: Type,
        source_domain: Optional[Iterable[Value]] = None,
        target_domain: Optional[Iterable[Value]] = None,
    ) -> None:
        self._pairs = frozenset(pairs)
        self.source = source
        self.target = target
        self._domain = frozenset(x for x, _ in self._pairs)
        self._codomain = frozenset(y for _, y in self._pairs)
        self.source_domain = (
            frozenset(source_domain) if source_domain is not None else self._domain
        )
        self.target_domain = (
            frozenset(target_domain) if target_domain is not None else self._codomain
        )
        self._images: dict[Value, frozenset] = {}
        self._preimages: dict[Value, frozenset] = {}
        for x, y in self._pairs:
            self._images.setdefault(x, frozenset())
            self._preimages.setdefault(y, frozenset())
            self._images[x] |= {y}
            self._preimages[y] |= {x}

    # -- core protocol ----------------------------------------------------

    def holds(self, x: Value, y: Value) -> bool:
        return (x, y) in self._pairs

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        return iter(self._images.get(x, frozenset()))

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        return iter(self._preimages.get(y, frozenset()))

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        return iter(self._pairs)

    # -- structure --------------------------------------------------------

    def domain(self) -> frozenset:
        """The set of left elements actually mapped."""
        return self._domain

    def codomain(self) -> frozenset:
        """The set of right elements actually hit."""
        return self._codomain

    def image_set(self, x: Value) -> frozenset:
        return self._images.get(x, frozenset())

    def preimage_set(self, y: Value) -> frozenset:
        return self._preimages.get(y, frozenset())

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mapping)
            and self._pairs == other._pairs
            and self.source == other.source
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self._pairs, self.source, self.target))

    def __repr__(self) -> str:
        items = ", ".join(
            f"{x!r}->{y!r}" for x, y in sorted(self._pairs, key=repr)[:8]
        )
        suffix = ", ..." if len(self._pairs) > 8 else ""
        return f"Mapping({{{items}{suffix}}} : {self.source} x {self.target})"

    # -- classical mapping classes ----------------------------------------

    def is_functional(self) -> bool:
        """True iff the mapping is a (partial) function left-to-right."""
        return all(len(ys) == 1 for ys in self._images.values())

    def is_injective(self) -> bool:
        """True iff it is functional and one-to-one."""
        return self.is_functional() and all(
            len(xs) == 1 for xs in self._preimages.values()
        )

    def is_total(self) -> bool:
        """True iff every element of the source domain is mapped."""
        return self.source_domain <= self._domain

    def is_surjective(self) -> bool:
        """True iff every element of the target domain is hit."""
        return self.target_domain <= self._codomain

    def is_bijective(self) -> bool:
        """Total + surjective + injective: an isomorphism generator."""
        return self.is_injective() and self.is_total() and self.is_surjective()

    # -- algebra ------------------------------------------------------------

    def compose(self, other: "Mapping") -> "Mapping":
        """Relational composition ``other after self``.

        ``(x, z)`` is in the result iff for some ``y``, ``self(x, y)``
        and ``other(y, z)`` — the H3 = H1 o H2 of Proposition 2.8(iii).
        """
        pairs = {
            (x, z)
            for x, y in self._pairs
            for z in other.image_set(y)
        }
        return Mapping(
            pairs,
            self.source,
            other.target,
            source_domain=self.source_domain,
            target_domain=other.target_domain,
        )

    def inverse(self) -> "Mapping":
        return Mapping(
            {(y, x) for x, y in self._pairs},
            self.target,
            self.source,
            source_domain=self.target_domain,
            target_domain=self.source_domain,
        )

    def restrict(self, left: Iterable[Value]) -> "Mapping":
        """Restrict the mapping to pairs whose left element is in ``left``."""
        keep = set(left)
        return Mapping(
            {(x, y) for x, y in self._pairs if x in keep},
            self.source,
            self.target,
        )

    def union(self, other: "Mapping") -> "Mapping":
        """Union of two mappings of the same type."""
        return Mapping(
            self._pairs | other._pairs,
            self.source,
            self.target,
            source_domain=self.source_domain | other.source_domain,
            target_domain=self.target_domain | other.target_domain,
        )

    def apply(self, x: Value) -> Value:
        """Apply a *functional* mapping to ``x``; raises otherwise."""
        ys = self._images.get(x)
        if ys is None:
            raise KeyError(f"{x!r} not in mapping domain")
        if len(ys) != 1:
            raise ValueError(f"mapping not functional at {x!r}: {sorted(ys, key=repr)}")
        return next(iter(ys))


class IdentityRel(Rel):
    """The identity mapping on a type, optionally with a finite carrier.

    Base-type leaves in a type expression correspond to the identity
    mapping on that type (Section 4.1, the ``count`` discussion); the
    treatment of ``bool`` in Section 2.5 also requires identity.
    """

    def __init__(self, t: Type, carrier: Optional[Iterable[Value]] = None) -> None:
        self.source = t
        self.target = t
        self.carrier = frozenset(carrier) if carrier is not None else None

    def holds(self, x: Value, y: Value) -> bool:
        if self.carrier is not None and x not in self.carrier:
            return False
        return x == y

    def images(self, x, budget=None):
        if self.carrier is not None and x not in self.carrier:
            return iter(())
        return iter((x,))

    preimages = images

    def pairs(self, budget=None):
        if self.carrier is None:
            raise Unenumerable("identity on an unbounded domain")
        return ((x, x) for x in self.carrier)

    def inverse(self) -> "IdentityRel":
        return self


class ConstantGraphRel(Rel):
    """The graph of a Python function as a relation, on a finite carrier.

    Used to treat interpreted functions as mappings (Section 2.5) and
    for ``map(f)`` commutation experiments (Section 4.4).
    """

    def __init__(
        self,
        fn: Callable[[Value], Value],
        source: Type,
        target: Type,
        carrier: Iterable[Value],
    ) -> None:
        self.fn = fn
        self.source = source
        self.target = target
        self.carrier = frozenset(carrier)

    def holds(self, x: Value, y: Value) -> bool:
        return x in self.carrier and self.fn(x) == y

    def images(self, x, budget=None):
        if x in self.carrier:
            yield self.fn(x)

    def preimages(self, y, budget=None):
        return (x for x in self.carrier if self.fn(x) == y)

    def pairs(self, budget=None):
        return ((x, self.fn(x)) for x in self.carrier)


def identity_on(t: Type, carrier: Optional[Iterable[Value]] = None) -> IdentityRel:
    """Identity mapping on type ``t``."""
    return IdentityRel(t, carrier)


def mapping_from_function(
    fn: Callable[[Value], Value],
    domain: Iterable[Value],
    source: Type,
    target: Type,
    target_domain: Optional[Iterable[Value]] = None,
) -> Mapping:
    """The finite graph of ``fn`` restricted to ``domain`` as a Mapping."""
    domain = list(domain)
    return Mapping(
        {(x, fn(x)) for x in domain},
        source,
        target,
        source_domain=domain,
        target_domain=target_domain,
    )


def mapping_from_pairs(
    pairs: Iterable[tuple[Value, Value]], source: Type, target: Type
) -> Mapping:
    """Convenience constructor mirroring the paper's set-of-pairs style."""
    return Mapping(pairs, source, target)
