"""Extension of mappings to complex types (Definitions 2.3 - 2.5).

Each type constructor has an associated *mapping constructor*:

* products extend component-wise (Def 2.3);
* lists extend position-wise on equal-length lists (Def 2.4);
* sets have **two** extension modes (Def 2.5):

  - ``rel``:  ``{K}^rel(R1, R2)`` iff every element of each side has a
    partner on the other;
  - ``strong``: additionally each side is the *maximal* set standing in
    the ``rel`` relation to the other.  For functional ``K`` this is
    exactly Chandra's strong homomorphism ``r1(x) <-> r2(h(x))``.

* bags are treated in the full paper only; we adopt the support-based
  analogue of the set modes plus multiplicity preservation for strong
  (documented as a substitution in DESIGN.md).

:func:`extend_family` lifts a family of base mappings along a type
expression (the ``H^rel`` / ``H^strong`` of Section 2.2): type variables
take the assigned mappings, base-type leaves take identities (with
``bool`` *always* identity, per Section 2.5).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping as TMapping, Optional

from ..types.ast import (
    BOOL,
    BagType,
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
    TypeVar,
)
from ..types.values import CVBag, CVList, CVSet, Tup, Value
from .mapping import Budget, IdentityRel, Rel, Unenumerable

__all__ = [
    "ProductRel",
    "ListRel",
    "SetRelExt",
    "SetStrongExt",
    "BagRelExt",
    "BagStrongExt",
    "extend_family",
    "extend_along",
    "REL",
    "STRONG",
    "ExtensionMode",
]

ExtensionMode = str
REL: ExtensionMode = "rel"
STRONG: ExtensionMode = "strong"

_DEFAULT_BUDGET = Budget()


def _budget(budget: Optional[Budget]) -> Budget:
    return budget if budget is not None else _DEFAULT_BUDGET


class ProductRel(Rel):
    """Component-wise extension ``K1 x ... x Kn`` (Definition 2.3)."""

    def __init__(self, components: tuple[Rel, ...]) -> None:
        self.components = components
        self.source = Product(tuple(c.source for c in components))
        self.target = Product(tuple(c.target for c in components))

    def holds(self, x: Value, y: Value) -> bool:
        if not (isinstance(x, Tup) and isinstance(y, Tup)):
            return False
        if len(x) != len(self.components) or len(y) != len(self.components):
            return False
        return all(
            rel.holds(xi, yi) for rel, xi, yi in zip(self.components, x, y)
        )

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(x, Tup) or len(x) != len(self.components):
            return
        choices = [list(rel.images(xi, budget)) for rel, xi in zip(self.components, x)]
        for combo in itertools.product(*choices):
            yield Tup(combo)

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(y, Tup) or len(y) != len(self.components):
            return
        choices = [
            list(rel.preimages(yi, budget)) for rel, yi in zip(self.components, y)
        ]
        for combo in itertools.product(*choices):
            yield Tup(combo)

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        b = _budget(budget)
        component_pairs = [list(rel.pairs(budget)) for rel in self.components]
        count = 0
        for combo in itertools.product(*component_pairs):
            count += 1
            if count > b.max_pairs:
                raise Unenumerable("product extension exceeds pair budget")
            yield Tup(x for x, _ in combo), Tup(y for _, y in combo)


class ListRel(Rel):
    """Position-wise extension ``<K>`` on equal-length lists (Def 2.4)."""

    def __init__(self, inner: Rel) -> None:
        self.inner = inner
        self.source = ListType(inner.source)
        self.target = ListType(inner.target)

    def holds(self, x: Value, y: Value) -> bool:
        if not (isinstance(x, CVList) and isinstance(y, CVList)):
            return False
        if len(x) != len(y):
            return False
        return all(self.inner.holds(xi, yi) for xi, yi in zip(x, y))

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(x, CVList):
            return
        choices = [list(self.inner.images(xi, budget)) for xi in x]
        for combo in itertools.product(*choices):
            yield CVList(combo)

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(y, CVList):
            return
        choices = [list(self.inner.preimages(yi, budget)) for yi in y]
        for combo in itertools.product(*choices):
            yield CVList(combo)

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        b = _budget(budget)
        inner_pairs = list(self.inner.pairs(budget))
        count = 0
        for length in range(b.max_list_len + 1):
            for combo in itertools.product(inner_pairs, repeat=length):
                count += 1
                if count > b.max_pairs:
                    raise Unenumerable("list extension exceeds pair budget")
                yield CVList(x for x, _ in combo), CVList(y for _, y in combo)


def _rel_condition(inner: Rel, r1: CVSet, r2: CVSet) -> bool:
    """The two-way cover condition of Definition 2.5(1)."""
    for x in r1:
        if not any(inner.holds(x, y) for y in r2):
            return False
    for y in r2:
        if not any(inner.holds(x, y) for x in r1):
            return False
    return True


class SetRelExt(Rel):
    """``{K}^rel`` — the unrestricted-homomorphism set extension."""

    def __init__(self, inner: Rel) -> None:
        self.inner = inner
        self.source = SetType(inner.source)
        self.target = SetType(inner.target)

    def holds(self, x: Value, y: Value) -> bool:
        if not (isinstance(x, CVSet) and isinstance(y, CVSet)):
            return False
        return _rel_condition(self.inner, x, y)

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        """All ``R2`` with ``{K}^rel(x, R2)``.

        Every valid image is a union of nonempty subsets of the
        element-wise image sets, so we enumerate those unions.
        """
        if not isinstance(x, CVSet):
            return
        b = _budget(budget)
        element_images = [frozenset(self.inner.images(xi, budget)) for xi in x]
        if any(not s for s in element_images):
            return
        if not element_images:
            yield CVSet()
            return
        subset_choices = []
        for s in element_images:
            items = sorted(s, key=repr)
            nonempty = [
                frozenset(c)
                for size in range(1, len(items) + 1)
                for c in itertools.combinations(items, size)
            ]
            subset_choices.append(nonempty)
        seen: set = set()
        count = 0
        for combo in itertools.product(*subset_choices):
            union: frozenset = frozenset().union(*combo)
            candidate = CVSet(union)
            if candidate in seen:
                continue
            seen.add(candidate)
            count += 1
            if count > b.max_pairs:
                raise Unenumerable("set-rel extension exceeds pair budget")
            yield candidate

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        return SetRelExt(self.inner.inverse()).images(y, budget)

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        b = _budget(budget)
        inner_pairs = list(self.inner.pairs(budget))
        lefts = {x for x, _ in inner_pairs}
        count = 0
        for size in range(min(b.max_set_size, len(lefts)) + 1):
            for left_combo in itertools.combinations(sorted(lefts, key=repr), size):
                left = CVSet(left_combo)
                for right in self.images(left, budget):
                    count += 1
                    if count > b.max_pairs:
                        raise Unenumerable("set-rel extension exceeds pair budget")
                    yield left, right


class SetStrongExt(Rel):
    """``{K}^strong`` — Def 2.5(2): rel + two-sided maximality.

    Maximality of ``R1`` w.r.t. ``R2`` means ``R1`` equals the set of
    *all* domain elements with a partner in ``R2``; symmetrically for
    ``R2``.  Proposition 2.8(ii): on set types the strong extension is
    injective, i.e. each side determines the other — which is what makes
    images/preimages computable here.
    """

    def __init__(self, inner: Rel) -> None:
        self.inner = inner
        self.source = SetType(inner.source)
        self.target = SetType(inner.target)

    def _maximal_left(self, r2: CVSet, budget: Optional[Budget]) -> CVSet:
        out: set = set()
        for y in r2:
            out.update(self.inner.preimages(y, budget))
        return CVSet(out)

    def _maximal_right(self, r1: CVSet, budget: Optional[Budget]) -> CVSet:
        out: set = set()
        for x in r1:
            out.update(self.inner.images(x, budget))
        return CVSet(out)

    def holds(self, x: Value, y: Value, budget: Optional[Budget] = None) -> bool:
        if not (isinstance(x, CVSet) and isinstance(y, CVSet)):
            return False
        if not _rel_condition(self.inner, x, y):
            return False
        return self._maximal_left(y, budget) == x and self._maximal_right(x, budget) == y

    def images(self, x: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(x, CVSet):
            return
        candidate = self._maximal_right(x, budget)
        if self.holds(x, candidate, budget):
            yield candidate

    def preimages(self, y: Value, budget: Optional[Budget] = None) -> Iterator[Value]:
        if not isinstance(y, CVSet):
            return
        candidate = self._maximal_left(y, budget)
        if self.holds(candidate, y, budget):
            yield candidate

    def pairs(self, budget: Optional[Budget] = None) -> Iterator[tuple[Value, Value]]:
        b = _budget(budget)
        inner_pairs = list(self.inner.pairs(budget))
        lefts = {x for x, _ in inner_pairs}
        count = 0
        for size in range(min(b.max_set_size, len(lefts)) + 1):
            for combo in itertools.combinations(sorted(lefts, key=repr), size):
                left = CVSet(combo)
                for right in self.images(left, budget):
                    count += 1
                    if count > b.max_pairs:
                        raise Unenumerable("set-strong extension exceeds pair budget")
                    yield left, right


class BagRelExt(Rel):
    """Support-based ``rel`` extension to bags.

    The PODS abstract defers bags to the full paper; we adopt the
    direct analogue of Def 2.5(1) on bag supports (see DESIGN.md).
    """

    def __init__(self, inner: Rel) -> None:
        self.inner = inner
        self.source = BagType(inner.source)
        self.target = BagType(inner.target)

    def holds(self, x: Value, y: Value) -> bool:
        if not (isinstance(x, CVBag) and isinstance(y, CVBag)):
            return False
        return _rel_condition(self.inner, CVSet(x.support()), CVSet(y.support()))


class BagStrongExt(Rel):
    """Support-based ``strong`` extension to bags with multiplicity
    preservation: supports relate strongly and matched elements carry
    equal total multiplicity mass on each side."""

    def __init__(self, inner: Rel) -> None:
        self.inner = inner
        self.source = BagType(inner.source)
        self.target = BagType(inner.target)

    def holds(self, x: Value, y: Value, budget: Optional[Budget] = None) -> bool:
        if not (isinstance(x, CVBag) and isinstance(y, CVBag)):
            return False
        strong = SetStrongExt(self.inner)
        if not strong.holds(CVSet(x.support()), CVSet(y.support()), budget):
            return False
        return len(x) == len(y)


def extend_along(
    template: Type,
    assignment: TMapping[str, Rel],
    mode: ExtensionMode = REL,
    node_modes: Optional[TMapping[int, ExtensionMode]] = None,
) -> Rel:
    """Extend mappings along a type expression (Section 2.2).

    Type variables are replaced by the assigned relations; base-type
    leaves become identity mappings, with ``bool`` always identity
    (Section 2.5).  ``mode`` selects the extension mode at every set
    node; a *mixed* labeling can be given via ``node_modes``, keyed by
    the pre-order index of the set node in the type tree.

    Function types become :class:`~repro.mappings.function_maps.FuncRel`
    (imported lazily to avoid a cycle); ``forall`` is rejected here —
    parametricity relations live in :mod:`repro.lambda2.parametricity`.
    """
    from .function_maps import FuncRel

    if mode not in (REL, STRONG):
        raise TypeError_(f"unknown extension mode: {mode!r}")

    set_index = itertools.count()

    def walk(t: Type) -> Rel:
        if isinstance(t, TypeVar):
            if t.name not in assignment:
                raise TypeError_(f"no mapping assigned to type variable {t.name}")
            return assignment[t.name]
        if isinstance(t, BaseType):
            return IdentityRel(t)
        if isinstance(t, Product):
            return ProductRel(tuple(walk(c) for c in t.components))
        if isinstance(t, ListType):
            return ListRel(walk(t.element))
        if isinstance(t, SetType):
            index = next(set_index)
            node_mode = (node_modes or {}).get(index, mode)
            inner = walk(t.element)
            if node_mode == STRONG:
                return SetStrongExt(inner)
            return SetRelExt(inner)
        if isinstance(t, BagType):
            inner = walk(t.element)
            if mode == STRONG:
                return BagStrongExt(inner)
            return BagRelExt(inner)
        if isinstance(t, FuncType):
            return FuncRel(walk(t.arg), walk(t.result))
        if isinstance(t, ForAll):
            raise TypeError_(
                "forall types are handled by repro.lambda2.parametricity"
            )
        raise TypeError_(f"unknown type node: {t!r}")

    return walk(template)


def extend_family(
    t: Type,
    family: TMapping[str, Rel],
    mode: ExtensionMode = REL,
) -> Rel:
    """Extend a family of base mappings ``{H_i : d_i x d_i'}`` to a
    mapping on the complex value type ``t`` — the ``H^rel`` / ``H^strong``
    of Section 2.2.

    ``family`` is keyed by the *source* base-type name.  Base types
    without an assigned mapping (and always ``bool``) take identity.
    """
    from .function_maps import FuncRel

    if mode not in (REL, STRONG):
        raise TypeError_(f"unknown extension mode: {mode!r}")

    def walk(node: Type) -> Rel:
        if isinstance(node, BaseType):
            if node == BOOL:
                return IdentityRel(BOOL, carrier=(True, False))
            return family.get(node.name, IdentityRel(node))
        if isinstance(node, TypeVar):
            raise TypeError_(
                "extend_family expects a closed complex value type; "
                f"found variable {node.name} (use extend_along)"
            )
        if isinstance(node, Product):
            return ProductRel(tuple(walk(c) for c in node.components))
        if isinstance(node, ListType):
            return ListRel(walk(node.element))
        if isinstance(node, SetType):
            inner = walk(node.element)
            return SetStrongExt(inner) if mode == STRONG else SetRelExt(inner)
        if isinstance(node, BagType):
            inner = walk(node.element)
            return BagStrongExt(inner) if mode == STRONG else BagRelExt(inner)
        if isinstance(node, FuncType):
            return FuncRel(walk(node.arg), walk(node.result))
        raise TypeError_(f"unknown type node in complex value type: {node!r}")

    return walk(t)
