"""Bounded carrier enumeration for extension relations.

Deciding ``(K -> K')(f, f')`` (Definition 4.2) at *higher-order*
argument types — e.g. the predicate argument of ``sigma : forall X.
(X -> bool) -> {X} -> {X}`` — requires enumerating the related pairs of
``K -> K'`` itself, which in turn requires enumerating all functions
between the finite carriers of the component relations.  This module
computes those carriers, bounded by a :class:`Budget`.

A *carrier* of a relation side is the finite universe of values that
side ranges over: the declared domain for base mappings, all bounded
lists/sets/tuples over component carriers for extensions, and all
finite (dict-backed) functions for function relations.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..types.values import CVList, CVSet, Tup, Value
from .extensions import ListRel, ProductRel, SetRelExt, SetStrongExt
from .function_maps import FuncRel
from .mapping import Budget, IdentityRel, Mapping, Rel, Unenumerable

__all__ = ["carrier", "DictFunction", "enumerate_function_pairs"]

_DEFAULT = Budget()


class DictFunction:
    """A finite function represented by its graph; hashable and callable.

    Used when enumerating "all functions" between finite carriers —
    e.g. all predicates over a small domain.
    """

    def __init__(self, graph: dict) -> None:
        self._graph = dict(graph)
        self._key = frozenset(self._graph.items())

    def __call__(self, x: Value) -> Value:
        return self._graph[x]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DictFunction) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def graph(self) -> dict:
        return dict(self._graph)

    def __repr__(self) -> str:
        items = ", ".join(
            f"{k!r}|->{v!r}" for k, v in sorted(self._graph.items(), key=repr)
        )
        return f"DictFunction({{{items}}})"


def carrier(rel: Rel, side: str, budget: Budget | None = None) -> list[Value]:
    """Enumerate the ``side`` ("left" or "right") carrier of ``rel``.

    Raises :class:`Unenumerable` when the relation gives no finite
    handle on its universe (e.g. identity without a declared carrier).
    """
    b = budget or _DEFAULT
    if isinstance(rel, Mapping):
        values = rel.source_domain if side == "left" else rel.target_domain
        return sorted(values, key=repr)
    if isinstance(rel, IdentityRel):
        if rel.carrier is None:
            raise Unenumerable("identity relation has no declared carrier")
        return sorted(rel.carrier, key=repr)
    if isinstance(rel, ProductRel):
        component_carriers = [carrier(c, side, b) for c in rel.components]
        return [Tup(combo) for combo in itertools.product(*component_carriers)]
    if isinstance(rel, ListRel):
        inner = carrier(rel.inner, side, b)
        out: list[Value] = []
        for length in range(b.max_list_len + 1):
            for combo in itertools.product(inner, repeat=length):
                out.append(CVList(combo))
                if len(out) > b.max_pairs:
                    raise Unenumerable("list carrier exceeds budget")
        return out
    if isinstance(rel, (SetRelExt, SetStrongExt)):
        inner = carrier(rel.inner, side, b)
        out = []
        for size in range(min(b.max_set_size, len(inner)) + 1):
            for combo in itertools.combinations(inner, size):
                out.append(CVSet(combo))
                if len(out) > b.max_pairs:
                    raise Unenumerable("set carrier exceeds budget")
        return out
    if isinstance(rel, FuncRel):
        args = carrier(rel.arg_rel, side, b)
        results = carrier(rel.result_rel, side, b)
        total = len(results) ** len(args) if args else 1
        if total > b.max_pairs:
            raise Unenumerable("function carrier exceeds budget")
        out = []
        for images in itertools.product(results, repeat=len(args)):
            out.append(DictFunction(dict(zip(args, images))))
        return out
    # Inverse wrapper and other relations: try the generic protocol.
    try:
        pairs = list(rel.pairs(b))
    except Unenumerable:
        raise
    index = 0 if side == "left" else 1
    seen: list[Value] = []
    for pair in pairs:
        if pair[index] not in seen:
            seen.append(pair[index])
    return seen


def enumerate_function_pairs(
    rel: FuncRel, budget: Budget | None = None
) -> Iterator[tuple[Value, Value]]:
    """All pairs ``(f, f')`` related by ``K -> K'`` between the finite
    carriers — the ``pairs`` protocol for function relations."""
    b = budget or _DEFAULT
    lefts = carrier(rel, "left", b)
    rights = carrier(rel, "right", b)
    if len(lefts) * len(rights) > b.max_pairs:
        raise Unenumerable("function pair enumeration exceeds budget")
    for f in lefts:
        for g in rights:
            if rel.holds(f, g, b):
                yield f, g
