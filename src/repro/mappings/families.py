"""Mapping families and preservation of constants, functions, predicates.

Covers Sections 2.4 and 2.5 of the paper:

* a :class:`MappingFamily` packages one base mapping per base type (the
  ``H = {H_i : d_i x d_i'}`` of Section 2.2) and exposes ``extend`` to
  any complex value type with a chosen extension mode;
* first-order constant preservation, regular and strict (Section 2.4.1);
* second-order preservation: a family preserves an interpreted function
  ``f`` if ``f`` is invariant under ``H^x``; a predicate is preserved
  under its functional interpretation with ``bool`` fixed to identity
  (Section 2.5), which yields Proposition 2.13 (``p`` preserved iff
  ``not p`` preserved).
"""

from __future__ import annotations

import itertools
from typing import Mapping as TMapping, Optional

from ..types.ast import BaseType, Type
from ..types.signatures import Interpreted
from ..types.values import Value
from .extensions import REL, ExtensionMode, extend_family
from .mapping import Budget, Mapping, Rel

__all__ = [
    "MappingFamily",
    "preserves_constant",
    "strictly_preserves_constant",
    "preserves_function",
    "preserves_predicate",
    "ConstantSpec",
]


class ConstantSpec:
    """A first-order constant together with its preservation strength.

    ``strict=False`` is regular preservation (``H(c, c)`` holds, and the
    mapping may still associate ``c`` with other values); ``strict=True``
    additionally demands ``x = c  iff  y = c`` for every related pair.
    """

    def __init__(self, value: Value, base: BaseType, strict: bool = False) -> None:
        self.value = value
        self.base = base
        self.strict = strict

    def __repr__(self) -> str:
        kind = "strict" if self.strict else "regular"
        return f"ConstantSpec({self.value!r} : {self.base}, {kind})"


class MappingFamily:
    """A family of base mappings, keyed by base-type name.

    At most one mapping per (domain, codomain) pair, as required in
    Section 2.2 ("we disallow H where two mappings have the same domain
    and codomain").  Extension to complex types goes through
    :func:`repro.mappings.extensions.extend_family`.
    """

    def __init__(self, mappings: TMapping[str, Mapping]) -> None:
        self.mappings = dict(mappings)
        if "bool" in self.mappings:
            raise ValueError("bool must stay identity (Section 2.5)")

    def __getitem__(self, base_name: str) -> Mapping:
        return self.mappings[base_name]

    def __contains__(self, base_name: str) -> bool:
        return base_name in self.mappings

    def extend(self, t: Type, mode: ExtensionMode = REL) -> Rel:
        """The extension ``H^mode`` at complex value type ``t``."""
        return extend_family(t, self.mappings, mode)

    def inverse(self) -> "MappingFamily":
        """Invert every member mapping (Prop 2.8(iv) experiments)."""
        return MappingFamily(
            {name: m.inverse() for name, m in self.mappings.items()}
        )

    def compose(self, other: "MappingFamily") -> "MappingFamily":
        """Member-wise relational composition (Prop 2.8(iii))."""
        return MappingFamily(
            {
                name: m.compose(other.mappings[name])
                for name, m in self.mappings.items()
                if name in other.mappings
            }
        )

    # -- class membership tests -------------------------------------------

    def is_functional(self) -> bool:
        return all(m.is_functional() for m in self.mappings.values())

    def is_injective(self) -> bool:
        return all(m.is_injective() for m in self.mappings.values())

    def is_total(self) -> bool:
        return all(m.is_total() for m in self.mappings.values())

    def is_surjective(self) -> bool:
        return all(m.is_surjective() for m in self.mappings.values())

    def is_bijective(self) -> bool:
        return all(m.is_bijective() for m in self.mappings.values())

    def preserves(self, spec: ConstantSpec) -> bool:
        """Does this family (strictly) preserve the given constant?"""
        mapping = self.mappings.get(spec.base.name)
        if mapping is None:
            # Identity on that base type preserves every constant.
            return True
        if spec.strict:
            return strictly_preserves_constant(mapping, spec.value)
        return preserves_constant(mapping, spec.value)

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.mappings))
        return f"MappingFamily({names})"


def preserves_constant(mapping: Mapping, c: Value) -> bool:
    """Regular preservation (Section 2.4.1): ``H(c, c)`` holds.

    Equivalently ``H^rel({c}, {c})``.
    """
    return mapping.holds(c, c)


def strictly_preserves_constant(mapping: Mapping, c: Value) -> bool:
    """Strict preservation: ``H(c, c)`` and for every related pair
    ``(x, y)``, ``x = c`` iff ``y = c``.

    Equivalently ``H^strong({c}, {c})``.
    """
    if not mapping.holds(c, c):
        return False
    return all((x == c) == (y == c) for x, y in mapping.pairs())


def _related_argument_pairs(
    family: MappingFamily,
    arg_types: tuple[Type, ...],
    budget: Optional[Budget],
):
    """Enumerate argument tuples related component-wise by the family."""
    per_argument = []
    for t in arg_types:
        if isinstance(t, BaseType) and t.name in family:
            per_argument.append(list(family[t.name].pairs(budget)))
        else:
            rel = family.extend(t)
            per_argument.append(list(rel.pairs(budget)))
    return itertools.product(*per_argument)


def preserves_function(
    family: MappingFamily,
    symbol: Interpreted,
    mode: ExtensionMode = REL,
    budget: Optional[Budget] = None,
) -> bool:
    """Second-order preservation (Section 2.5): ``H^x`` preserves the
    interpreted function ``f`` iff ``f`` is invariant under ``H^x`` —
    whenever the arguments are related, so are the results.
    """
    result_rel = family.extend(symbol.result_type, mode)
    for combo in _related_argument_pairs(family, symbol.arg_types, budget):
        xs = [x for x, _ in combo]
        ys = [y for _, y in combo]
        if not result_rel.holds(symbol.fn(*xs), symbol.fn(*ys)):
            return False
    return True


def preserves_predicate(
    family: MappingFamily,
    symbol: Interpreted,
    mode: ExtensionMode = REL,
    budget: Optional[Budget] = None,
) -> bool:
    """Predicate preservation under the functional interpretation.

    A predicate is a bool-valued function; the mapping is required to be
    the identity on ``bool`` (Section 2.5) — which
    :class:`MappingFamily` guarantees by construction — so preservation
    reduces to :func:`preserves_function`.  Proposition 2.13 (``p``
    preserved iff ``not p`` preserved) follows because identity on bool
    relates equal truth values only.
    """
    if not symbol.is_predicate:
        raise ValueError(f"{symbol.name} is not a predicate")
    return preserves_function(family, symbol, mode, budget)
