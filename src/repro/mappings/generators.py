"""Random generators for mappings, domains and complex values.

Genericity claims quantify over *classes* of mappings (all, functional,
injective, total, surjective, constant-preserving, ...).  These
generators produce random members of each class between finite sampled
domains, plus random complex values of a given type over those domains
— the raw material for the empirical invariance checks and the
counterexample searches.

All generators are deterministic given a :class:`random.Random` seed,
so experiments are reproducible.
"""

from __future__ import annotations

import itertools
import random
import string
from typing import Iterable, Optional, Sequence

from ..types.ast import (
    BOOL,
    INT,
    STR,
    BagType,
    BaseType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
)
from ..types.values import CVBag, CVList, CVSet, Tup, Value
from .families import MappingFamily
from .mapping import Mapping

__all__ = [
    "MAPPING_CLASSES",
    "random_domain",
    "random_mapping",
    "random_functional_mapping",
    "random_injective_mapping",
    "random_bijective_mapping",
    "random_total_surjective_mapping",
    "random_mapping_in_class",
    "random_family",
    "random_value",
    "random_relation_value",
    "all_mappings_between",
]

#: The mapping-class lattice explored by the experiments.  Order matters
#: for classification: earlier classes are larger (Proposition 2.10
#: gives the containment-reverses-genericity picture).
MAPPING_CLASSES = (
    "all",
    "total_surjective",
    "functional",
    "surjective_functional",
    "injective",
    "bijective",
)


def random_domain(
    rng: random.Random,
    size: int,
    base: BaseType = INT,
    offset: int = 0,
) -> list[Value]:
    """A fresh finite domain of ``size`` atoms for ``base``."""
    if base == INT:
        return [offset + i for i in range(size)]
    if base == STR:
        letters = string.ascii_lowercase
        out = []
        for i in range(size):
            name = letters[i % 26] + (str(i // 26) if i >= 26 else "")
            out.append(f"{name}{offset if offset else ''}")
        return out
    if base == BOOL:
        return [True, False][:size]
    # Abstract domains: tagged strings.
    return [f"{base.name}_{offset + i}" for i in range(size)]


def random_mapping(
    rng: random.Random,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
    density: float = 0.5,
    ensure_nonempty: bool = True,
) -> Mapping:
    """A random *general* mapping: each pair independently included."""
    target = target or source
    pairs = {
        (x, y)
        for x in left
        for y in right
        if rng.random() < density
    }
    if ensure_nonempty and not pairs and left and right:
        pairs.add((rng.choice(list(left)), rng.choice(list(right))))
    return Mapping(pairs, source, target, source_domain=left, target_domain=right)


def random_functional_mapping(
    rng: random.Random,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
    total: bool = True,
) -> Mapping:
    """A random functional (many-to-one) mapping; total by default."""
    target = target or source
    pairs = set()
    for x in left:
        if total or rng.random() < 0.8:
            pairs.add((x, rng.choice(list(right))))
    return Mapping(pairs, source, target, source_domain=left, target_domain=right)


def random_injective_mapping(
    rng: random.Random,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
    total: bool = True,
) -> Mapping:
    """A random injective (one-to-one) mapping.

    Requires ``len(right) >= len(left)`` when total.
    """
    target = target or source
    chosen_left = list(left)
    if not total:
        chosen_left = [x for x in chosen_left if rng.random() < 0.8] or chosen_left[:1]
    if len(right) < len(chosen_left):
        raise ValueError("codomain too small for an injective total mapping")
    targets = rng.sample(list(right), len(chosen_left))
    pairs = set(zip(chosen_left, targets))
    return Mapping(pairs, source, target, source_domain=left, target_domain=right)


def random_bijective_mapping(
    rng: random.Random,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
) -> Mapping:
    """A random bijection; requires equal domain sizes."""
    if len(left) != len(right):
        raise ValueError("bijection needs equal domain sizes")
    target = target or source
    shuffled = list(right)
    rng.shuffle(shuffled)
    pairs = set(zip(left, shuffled))
    return Mapping(pairs, source, target, source_domain=left, target_domain=right)


def random_total_surjective_mapping(
    rng: random.Random,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
) -> Mapping:
    """A random mapping that is total on the left and surjective on the
    right (Section 3.3's mapping class), not necessarily functional."""
    target = target or source
    pairs = {(x, rng.choice(list(right))) for x in left}
    pairs |= {(rng.choice(list(left)), y) for y in right}
    # Keep the mapping sparse: a dense total+surjective mapping makes
    # every strong closure saturate to the full domains, hiding e.g.
    # parity-breaking collapses from the counterexample search.
    if rng.random() < 0.3:
        pairs.add((rng.choice(list(left)), rng.choice(list(right))))
    return Mapping(pairs, source, target, source_domain=left, target_domain=right)


def random_mapping_in_class(
    rng: random.Random,
    cls: str,
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
) -> Mapping:
    """Dispatch on a :data:`MAPPING_CLASSES` name."""
    if cls == "all":
        return random_mapping(rng, left, right, source, target)
    if cls == "total_surjective":
        return random_total_surjective_mapping(rng, left, right, source, target)
    if cls == "functional":
        return random_functional_mapping(rng, left, right, source, target)
    if cls == "surjective_functional":
        # A total function onto the codomain: pick a surjection.
        if len(left) < len(right):
            raise ValueError("domain too small for a surjective function")
        target = target or source
        rights = list(right)
        lefts = list(left)
        rng.shuffle(lefts)
        pairs = set(zip(lefts[: len(rights)], rights))
        for x in lefts[len(rights):]:
            pairs.add((x, rng.choice(rights)))
        return Mapping(pairs, source, target, source_domain=left, target_domain=right)
    if cls == "injective":
        return random_injective_mapping(rng, left, right, source, target)
    if cls == "bijective":
        return random_bijective_mapping(rng, left, right, source, target)
    raise ValueError(f"unknown mapping class: {cls!r}")


def random_family(
    rng: random.Random,
    cls: str,
    base_types: Iterable[BaseType] = (INT,),
    domain_size: int = 4,
    codomain_size: Optional[int] = None,
) -> MappingFamily:
    """A random mapping family with one member per base type."""
    codomain_size = codomain_size if codomain_size is not None else domain_size
    mappings = {}
    for i, base in enumerate(base_types):
        left = random_domain(rng, domain_size, base, offset=0)
        right = random_domain(rng, codomain_size, base, offset=100 + 100 * i)
        mappings[base.name] = random_mapping_in_class(
            rng, cls, left, right, base, base
        )
    return MappingFamily(mappings)


def all_mappings_between(
    left: Sequence[Value],
    right: Sequence[Value],
    source: BaseType = INT,
    target: Optional[BaseType] = None,
    nonempty: bool = True,
) -> list[Mapping]:
    """Exhaustively enumerate every mapping between two small domains.

    Feasible only when ``len(left) * len(right)`` is small; used for
    the exact tiers of the experiments.
    """
    target = target or source
    cells = [(x, y) for x in left for y in right]
    if len(cells) > 16:
        raise ValueError("domains too large for exhaustive mapping enumeration")
    out = []
    for bits in itertools.product((False, True), repeat=len(cells)):
        pairs = {cell for cell, bit in zip(cells, bits) if bit}
        if nonempty and not pairs:
            continue
        out.append(
            Mapping(pairs, source, target, source_domain=left, target_domain=right)
        )
    return out


def random_value(
    rng: random.Random,
    t: Type,
    domains: dict[str, Sequence[Value]],
    max_collection: int = 3,
) -> Value:
    """A random complex value of type ``t`` with atoms from ``domains``.

    ``domains`` maps base-type names to their finite carrier.  ``bool``
    defaults to ``{True, False}`` if not supplied.
    """
    if isinstance(t, BaseType):
        if t == BOOL and t.name not in domains:
            return rng.choice((True, False))
        carrier = domains.get(t.name)
        if not carrier:
            raise TypeError_(f"no domain supplied for base type {t.name}")
        return rng.choice(list(carrier))
    if isinstance(t, Product):
        return Tup(
            random_value(rng, c, domains, max_collection) for c in t.components
        )
    if isinstance(t, SetType):
        size = rng.randint(0, max_collection)
        return CVSet(
            random_value(rng, t.element, domains, max_collection)
            for _ in range(size)
        )
    if isinstance(t, BagType):
        size = rng.randint(0, max_collection)
        return CVBag(
            random_value(rng, t.element, domains, max_collection)
            for _ in range(size)
        )
    if isinstance(t, ListType):
        size = rng.randint(0, max_collection)
        return CVList(
            random_value(rng, t.element, domains, max_collection)
            for _ in range(size)
        )
    raise TypeError_(f"cannot generate values of type {t}")


def random_relation_value(
    rng: random.Random,
    arity: int,
    domain: Sequence[Value],
    size: int,
) -> CVSet:
    """A random flat relation: a set of ``size`` distinct ``arity``-tuples."""
    universe = list(itertools.product(domain, repeat=arity))
    size = min(size, len(universe))
    return CVSet(Tup(row) for row in rng.sample(universe, size))
