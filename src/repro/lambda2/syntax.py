"""Term syntax of the 2nd-order lambda calculus (Section 4.1).

The pure language has lambda abstraction, application, type abstraction
(``Lambda X. e``) and type application (``e[alpha]``).  Following the
paper we add products and lists as primitive type constructors, plus
base-type literals and a small set of native constants (declared in
:mod:`repro.lambda2.prelude`) for the interpreted operations examples
like ``count`` need (``succ``) and for list primitives.

Terms are immutable dataclasses; the checker lives in
:mod:`repro.lambda2.typecheck` and the evaluator in
:mod:`repro.lambda2.eval`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types.ast import Type

__all__ = [
    "Term",
    "Var",
    "Lam",
    "App",
    "TLam",
    "TApp",
    "Lit",
    "Const",
    "MkTuple",
    "Proj",
    "lam",
    "tlam",
    "app",
    "tapp",
]


@dataclass(frozen=True)
class Term:
    """Abstract base class for System F terms."""


@dataclass(frozen=True)
class Var(Term):
    """A value variable ``x``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lam(Term):
    """Lambda abstraction ``\\x : T. body``."""

    var: str
    var_type: Type
    body: Term

    def __str__(self) -> str:
        return f"(\\{self.var}:{self.var_type}. {self.body})"


@dataclass(frozen=True)
class App(Term):
    """Application ``fn arg``."""

    fn: Term
    arg: Term

    def __str__(self) -> str:
        return f"({self.fn} {self.arg})"


@dataclass(frozen=True)
class TLam(Term):
    """Type abstraction ``/\\X. body`` (``Lambda X. e``).

    ``requires_eq`` marks quantification over eq-types (``X=``), used by
    list difference (Section 4.1)."""

    var: str
    body: Term
    requires_eq: bool = False

    def __str__(self) -> str:
        eq = "=" if self.requires_eq else ""
        return f"(/\\{self.var}{eq}. {self.body})"


@dataclass(frozen=True)
class TApp(Term):
    """Type application ``term[type]`` — selects the type's component."""

    term: Term
    type_arg: Type

    def __str__(self) -> str:
        return f"{self.term}[{self.type_arg}]"


@dataclass(frozen=True)
class Lit(Term):
    """A base-type literal with its declared type."""

    value: object
    type: Type

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Const(Term):
    """A named native constant; its type and implementation come from
    the prelude environment handed to the checker/evaluator."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MkTuple(Term):
    """Tuple introduction ``(e1, ..., en)``."""

    items: tuple[Term, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.items) + ")"


@dataclass(frozen=True)
class Proj(Term):
    """Tuple projection ``e.i`` (0-based)."""

    term: Term
    index: int

    def __str__(self) -> str:
        return f"{self.term}.{self.index}"


# -- fluent builders --------------------------------------------------------

def lam(var: str, var_type: Type, body: Term) -> Lam:
    """Build a lambda abstraction."""
    return Lam(var, var_type, body)


def tlam(var: str, body: Term, requires_eq: bool = False) -> TLam:
    """Build a type abstraction."""
    return TLam(var, body, requires_eq)


def app(fn: Term, *args: Term) -> Term:
    """Left-nested application of several arguments."""
    out: Term = fn
    for arg in args:
        out = App(out, arg)
    return out


def tapp(term: Term, *types: Type) -> Term:
    """Left-nested type application."""
    out: Term = term
    for t in types:
        out = TApp(out, t)
    return out
