"""Type checker for the 2nd-order lambda calculus.

Standard type synthesis for System F extended with products, lists and
native constants.  Because Python is dynamically typed, this checker is
what makes the library's "typed genericity" real: every prelude term is
checked against its declared polymorphic type, and parametricity
relations are *derived from the checked types*, never from runtime
inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as TMapping, Optional

from ..types.ast import (
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeVar,
    alpha_equal,
    free_type_vars,
    substitute,
)
from .syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, Term, TLam, Var

__all__ = ["TypeCheckError", "Context", "synthesize", "check_term"]


class TypeCheckError(Exception):
    """Raised when a term fails to typecheck."""


@dataclass
class Context:
    """Typing context: value variables, bound type variables, constants."""

    values: dict[str, Type] = field(default_factory=dict)
    type_vars: dict[str, bool] = field(default_factory=dict)  # name -> requires_eq
    constants: TMapping[str, Type] = field(default_factory=dict)

    def bind_value(self, name: str, t: Type) -> "Context":
        values = dict(self.values)
        values[name] = t
        return Context(values, dict(self.type_vars), self.constants)

    def bind_type(self, name: str, requires_eq: bool) -> "Context":
        type_vars = dict(self.type_vars)
        type_vars[name] = requires_eq
        return Context(dict(self.values), type_vars, self.constants)


def _well_formed(t: Type, ctx: Context) -> None:
    for name in free_type_vars(t):
        if name not in ctx.type_vars:
            raise TypeCheckError(f"unbound type variable {name} in {t}")


def _has_equality(t: Type, ctx: Context) -> bool:
    """Conservative eq-type check: a type admits equality iff it is
    built from base types, eq-variables, products, sets and lists —
    function types do not carry decidable equality."""
    if isinstance(t, TypeVar):
        return ctx.type_vars.get(t.name, False) or t.requires_eq
    if isinstance(t, (FuncType, ForAll)):
        return False
    if isinstance(t, Product):
        return all(_has_equality(c, ctx) for c in t.components)
    if isinstance(t, (ListType, SetType)):
        return _has_equality(t.element, ctx)
    return True  # base types


def synthesize(term: Term, ctx: Optional[Context] = None) -> Type:
    """Synthesize the type of ``term`` in ``ctx``; raise on failure."""
    ctx = ctx or Context()
    if isinstance(term, Var):
        if term.name not in ctx.values:
            raise TypeCheckError(f"unbound variable {term.name}")
        return ctx.values[term.name]
    if isinstance(term, Lit):
        return term.type
    if isinstance(term, Const):
        if term.name not in ctx.constants:
            raise TypeCheckError(f"unknown constant {term.name}")
        return ctx.constants[term.name]
    if isinstance(term, Lam):
        _well_formed(term.var_type, ctx)
        body_type = synthesize(term.body, ctx.bind_value(term.var, term.var_type))
        return FuncType(term.var_type, body_type)
    if isinstance(term, App):
        fn_type = synthesize(term.fn, ctx)
        if not isinstance(fn_type, FuncType):
            raise TypeCheckError(f"applying non-function of type {fn_type}")
        arg_type = synthesize(term.arg, ctx)
        if not alpha_equal(fn_type.arg, arg_type):
            raise TypeCheckError(
                f"argument type mismatch: expected {fn_type.arg}, got {arg_type}"
            )
        return fn_type.result
    if isinstance(term, TLam):
        body_type = synthesize(
            term.body, ctx.bind_type(term.var, term.requires_eq)
        )
        return ForAll(term.var, body_type, term.requires_eq)
    if isinstance(term, TApp):
        target = synthesize(term.term, ctx)
        if not isinstance(target, ForAll):
            raise TypeCheckError(f"type-applying non-polymorphic type {target}")
        _well_formed(term.type_arg, ctx)
        if target.requires_eq and not _has_equality(term.type_arg, ctx):
            raise TypeCheckError(
                f"{term.type_arg} is not an eq-type but {target} requires one"
            )
        return substitute(target.body, {target.var: term.type_arg})
    if isinstance(term, MkTuple):
        return Product(tuple(synthesize(e, ctx) for e in term.items))
    if isinstance(term, Proj):
        target = synthesize(term.term, ctx)
        if not isinstance(target, Product):
            raise TypeCheckError(f"projecting from non-product type {target}")
        if not (0 <= term.index < len(target.components)):
            raise TypeCheckError(
                f"projection index {term.index} out of range for {target}"
            )
        return target.components[term.index]
    raise TypeCheckError(f"unknown term node: {term!r}")


def check_term(term: Term, expected: Type, ctx: Optional[Context] = None) -> Type:
    """Check ``term`` against ``expected`` (up to alpha); return the
    synthesized type."""
    actual = synthesize(term, ctx)
    if not alpha_equal(actual, expected):
        raise TypeCheckError(f"expected {expected}, synthesized {actual}")
    return actual
