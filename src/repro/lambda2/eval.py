"""Evaluator for the 2nd-order lambda calculus.

Environment-based call-by-value evaluation.  Types are *erased* at
runtime except that type abstraction evaluates to a
:class:`~repro.mappings.function_maps.PolyValue` — a family of
components indexed by types — because the parametricity relation of
Definition 4.3 needs to instantiate both sides at *different* types.

Runtime values are complex values (:mod:`repro.types.values`) plus
Python callables for functions, matching the paper's set-theoretic
semantic domain of Section 4.2.
"""

from __future__ import annotations

from typing import Mapping as TMapping, Optional

from ..mappings.function_maps import PolyValue
from ..types.ast import Type
from .syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, Term, TLam, Var
from ..types.values import Tup

__all__ = ["EvalError", "evaluate", "Environment"]

Environment = dict


class EvalError(Exception):
    """Raised on runtime errors (unbound variables, bad applications)."""


def evaluate(
    term: Term,
    env: Optional[TMapping[str, object]] = None,
    constants: Optional[TMapping[str, object]] = None,
) -> object:
    """Evaluate ``term`` to a runtime value.

    ``env`` binds value variables; ``constants`` supplies native
    implementations for :class:`~repro.lambda2.syntax.Const` nodes
    (the prelude passes its implementation table here).
    """
    env = dict(env or {})
    constants = constants or {}

    def run(node: Term, scope: dict) -> object:
        if isinstance(node, Var):
            if node.name not in scope:
                raise EvalError(f"unbound variable {node.name}")
            return scope[node.name]
        if isinstance(node, Lit):
            return node.value
        if isinstance(node, Const):
            if node.name not in constants:
                raise EvalError(f"unknown constant {node.name}")
            return constants[node.name]
        if isinstance(node, Lam):
            def closure(arg, node=node, scope=dict(scope)):
                inner = dict(scope)
                inner[node.var] = arg
                return run(node.body, inner)

            return closure
        if isinstance(node, App):
            fn = run(node.fn, scope)
            arg = run(node.arg, scope)
            if isinstance(fn, PolyValue):
                raise EvalError("applying a polymorphic value to a term; "
                                "instantiate it with a type first")
            if not callable(fn):
                raise EvalError(f"applying non-function {fn!r}")
            return fn(arg)
        if isinstance(node, TLam):
            captured = dict(scope)

            def instantiate(t: Type, node=node, captured=captured):
                # Types are erased: the component at every type is the
                # same underlying computation.
                return run(node.body, dict(captured))

            from ..types.ast import ForAll, TypeVar as TV

            # Best-effort type for the PolyValue (the checker is the
            # authority; this is informational).
            return PolyValue(instantiate, ForAll(node.var, TV(node.var)))
        if isinstance(node, TApp):
            target = run(node.term, scope)
            if isinstance(target, PolyValue):
                return target[node.type_arg]
            return target  # erased polymorphism of native constants
        if isinstance(node, MkTuple):
            return Tup(run(e, scope) for e in node.items)
        if isinstance(node, Proj):
            target = run(node.term, scope)
            if not isinstance(target, Tup):
                raise EvalError(f"projecting from non-tuple {target!r}")
            return target[node.index]
        raise EvalError(f"unknown term node: {node!r}")

    return run(term, env)
