"""Boehm-Berarducci (Church) encodings of lists in *pure* System F.

The paper notes that "the 2nd-order calculus ... can express lists, but
not sets" (Section 4.2).  The prelude makes lists primitive for
convenience; this module backs the claim up by *deriving* lists inside
the pure calculus:

    ChurchList X  =  forall R. (X -> R -> R) -> R -> R

with ``nil``, ``cons``, ``append`` and ``foldr`` all definable as pure
terms — type-checked against their declared polymorphic types — and
round-tripping conversions to the native list values, so the encodings
can be tested against the prelude implementations.
"""

from __future__ import annotations


from ..types.ast import Type, TypeVar, forall, func
from ..types.values import CVList
from .eval import evaluate
from .syntax import Term, Var, app, lam, tapp, tlam
from .typecheck import check_term

__all__ = [
    "church_list_type",
    "church_nil",
    "church_cons",
    "church_append",
    "church_foldr_use",
    "encode_list",
    "decode_list",
    "church_prelude_terms",
]

_X = TypeVar("X")
_R = TypeVar("R")


def church_list_type(element: Type) -> Type:
    """``forall R. (element -> R -> R) -> R -> R``."""
    return forall("R", func(func(element, _R, _R), _R, _R))


def church_nil() -> Term:
    """``/\\X. /\\R. \\c. \\n. n : forall X. ChurchList X``."""
    return tlam(
        "X",
        tlam(
            "R",
            lam("c", func(_X, _R, _R), lam("n", _R, Var("n"))),
        ),
    )


def church_cons() -> Term:
    """``/\\X. \\h. \\t. /\\R. \\c. \\n. c h (t[R] c n)``."""
    t_list = church_list_type(_X)
    body = tlam(
        "R",
        lam(
            "c",
            func(_X, _R, _R),
            lam(
                "n",
                _R,
                app(
                    Var("c"),
                    Var("h"),
                    app(tapp(Var("t"), _R), Var("c"), Var("n")),
                ),
            ),
        ),
    )
    return tlam("X", lam("h", _X, lam("t", t_list, body)))


def church_append() -> Term:
    """``/\\X. \\l1. \\l2. /\\R. \\c. \\n. l1[R] c (l2[R] c n)``.

    The paper's ``#`` as a pure term: fold the first list with cons over
    the second."""
    t_list = church_list_type(_X)
    body = tlam(
        "R",
        lam(
            "c",
            func(_X, _R, _R),
            lam(
                "n",
                _R,
                app(
                    tapp(Var("l1"), _R),
                    Var("c"),
                    app(tapp(Var("l2"), _R), Var("c"), Var("n")),
                ),
            ),
        ),
    )
    return tlam("X", lam("l1", t_list, lam("l2", t_list, body)))


def church_foldr_use(result: Type) -> Term:
    """``/\\X. \\l. \\c. \\n. l[result] c n`` — the eliminator *is* the
    encoding: folding a Church list is type application."""
    t_list = church_list_type(_X)
    return tlam(
        "X",
        lam(
            "l",
            t_list,
            lam(
                "c",
                func(_X, result, result),
                lam("n", result, app(tapp(Var("l"), result), Var("c"), Var("n"))),
            ),
        ),
    )


def church_prelude_terms() -> dict[str, tuple[Term, Type]]:
    """The pure-calculus list library with declared, checked types."""
    entries = {
        "c_nil": (church_nil(), forall("X", church_list_type(_X))),
        "c_cons": (
            church_cons(),
            forall("X", func(_X, church_list_type(_X), church_list_type(_X))),
        ),
        "c_append": (
            church_append(),
            forall(
                "X",
                func(
                    church_list_type(_X),
                    church_list_type(_X),
                    church_list_type(_X),
                ),
            ),
        ),
    }
    for name, (term, declared) in entries.items():
        check_term(term, declared)
    return entries


def encode_list(values: CVList, element: Type) -> object:
    """Encode a native list as an (evaluated) Church list at ``element``."""
    entries = church_prelude_terms()
    constants = {name: evaluate(term) for name, (term, _t) in entries.items()}
    out = constants["c_nil"][element]
    cons = constants["c_cons"][element]
    for item in reversed(list(values)):
        out = cons(item)(out)
    return out


def decode_list(church_value: object, element: Type) -> CVList:
    """Decode an evaluated Church list back to a native list.

    Instantiates the encoding at the native list type and folds with the
    native constructors."""
    from ..mappings.function_maps import PolyValue
    from ..types.ast import ListType

    if isinstance(church_value, PolyValue):
        component = church_value.instantiate(ListType(element))
    else:
        component = church_value

    def native_cons(head):
        return lambda tail: tail.cons(head)

    return component(native_cons)(CVList())
