"""Parametricity: logical relations derived from types (Section 4.1).

Given a (closed) type ``T``, :func:`logical_relation` builds the
corresponding mapping ``T`` by induction on the type structure:

* type variables take the mappings assigned to them (independently per
  variable — the ``zip`` discussion);
* base-type leaves take identity mappings (the ``count`` discussion);
* products/lists/sets take the extension constructors of Section 2
  (sets with the ``rel`` mode, per Section 4.2);
* ``->`` takes :class:`~repro.mappings.function_maps.FuncRel`
  (Definition 4.2);
* ``forall`` takes :class:`~repro.mappings.function_maps.ForAllRel`
  (Definition 4.3) quantifying over a supplied candidate family of
  mappings — including mappings between types of *different structure*
  (e.g. ``str x <int>``), which is precisely where parametricity says
  more than genericity (Section 4.3, item 2).

:func:`check_parametricity` then tests the Parametricity Theorem
(Theorem 4.4): for a term ``l : T`` expressible in the calculus,
``T(l, l)`` holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..mappings.extensions import ListRel, ProductRel, SetRelExt
from ..mappings.function_maps import ForAllRel, FuncRel
from ..mappings.mapping import Budget, IdentityRel, Mapping, Rel
from ..types.ast import (
    INT,
    STR,
    BagType,
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
    TypeVar,
    list_of,
)
from ..types.values import CVList

__all__ = [
    "Candidate",
    "default_candidates",
    "eq_candidates",
    "logical_relation",
    "check_parametricity",
    "ParametricityReport",
]

#: A quantifier instance: (alpha, beta, H : alpha x beta).
Candidate = tuple[Type, Type, Rel]

#: Default carriers for base-type identity relations, so function
#: relations over base types stay enumerable.
_BASE_CARRIERS: dict[str, tuple] = {
    "bool": (True, False),
    "int": (0, 1, 2),
    "str": ("a", "b"),
}


def default_candidates(
    seed: int = 0,
    include_cross_structure: bool = True,
    injective_only: bool = False,
) -> list[Candidate]:
    """A standard family of quantifier instances.

    Contains functional, non-functional, partial and (optionally)
    *cross-structure* mappings — the latter relate values of different
    shapes (``str`` to ``<int>``), exercising the paper's point that
    parametric functions are invariant even under structure-changing
    mappings."""
    rng = random.Random(seed)
    out: list[Candidate] = []

    # An injective renaming int -> int (classical isomorphism seed).
    out.append(
        (
            INT,
            INT,
            Mapping({(0, 10), (1, 11), (2, 12)}, INT, INT,
                    source_domain=(0, 1, 2), target_domain=(10, 11, 12)),
        )
    )
    # A non-injective collapse int -> str.
    if not injective_only:
        out.append(
            (
                INT,
                STR,
                Mapping({(0, "a"), (1, "a"), (2, "b")}, INT, STR,
                        source_domain=(0, 1, 2), target_domain=("a", "b")),
            )
        )
        # A genuinely relational (many-to-many) mapping.
        out.append(
            (
                INT,
                INT,
                Mapping({(0, 10), (0, 11), (1, 11), (2, 12)}, INT, INT,
                        source_domain=(0, 1, 2), target_domain=(10, 11, 12)),
            )
        )
    else:
        out.append(
            (
                STR,
                STR,
                Mapping({("a", "x"), ("b", "y")}, STR, STR,
                        source_domain=("a", "b"), target_domain=("x", "y")),
            )
        )
    # A partial mapping (not total, not surjective).
    out.append(
        (
            INT,
            INT,
            Mapping({(0, 10)}, INT, INT,
                    source_domain=(0, 1), target_domain=(10, 11)),
        )
    )
    if include_cross_structure and not injective_only:
        # The paper's example: H : str x <int> = {(a,<1>), (b,<7,1>)}.
        out.append(
            (
                STR,
                list_of(INT),
                Mapping(
                    {("a", CVList((1,))), ("b", CVList((7, 1)))},
                    STR,
                    list_of(INT),
                    source_domain=("a", "b"),
                    target_domain=(CVList((1,)), CVList((7, 1))),
                ),
            )
        )
    return out


def eq_candidates(seed: int = 0) -> list[Candidate]:
    """Candidates for ``forall X=`` — injective mappings only, since
    only those preserve equality (Section 4.1, list difference)."""
    return default_candidates(seed, include_cross_structure=False, injective_only=True)


def logical_relation(
    t: Type,
    var_rels: Optional[dict[str, Rel]] = None,
    candidates: Optional[Sequence[Candidate]] = None,
    eq_cands: Optional[Sequence[Candidate]] = None,
    base_carriers: Optional[dict[str, tuple]] = None,
) -> Rel:
    """Build the relation ``T`` corresponding to type ``t``.

    ``var_rels`` assigns relations to free type variables; quantifiers
    range over ``candidates`` (or ``eq_cands`` for eq-quantifiers)."""
    var_rels = dict(var_rels or {})
    candidates = list(candidates if candidates is not None else default_candidates())
    eq_cands = list(eq_cands if eq_cands is not None else eq_candidates())
    carriers = dict(_BASE_CARRIERS)
    carriers.update(base_carriers or {})

    def walk(node: Type, env: dict[str, Rel]) -> Rel:
        if isinstance(node, TypeVar):
            if node.name not in env:
                raise TypeError_(f"free type variable {node.name} has no relation")
            return env[node.name]
        if isinstance(node, BaseType):
            return IdentityRel(node, carrier=carriers.get(node.name))
        if isinstance(node, Product):
            return ProductRel(tuple(walk(c, env) for c in node.components))
        if isinstance(node, ListType):
            return ListRel(walk(node.element, env))
        if isinstance(node, SetType):
            return SetRelExt(walk(node.element, env))
        if isinstance(node, BagType):
            from ..mappings.extensions import BagRelExt

            return BagRelExt(walk(node.element, env))
        if isinstance(node, FuncType):
            return FuncRel(walk(node.arg, env), walk(node.result, env))
        if isinstance(node, ForAll):
            family = eq_cands if node.requires_eq else candidates

            def body_builder(h: Rel, node=node, env=env):
                inner = dict(env)
                inner[node.var] = h
                return walk(node.body, inner)

            return ForAllRel(node, family, body_builder)
        raise TypeError_(f"unknown type node: {node!r}")

    return walk(t, var_rels)


@dataclass
class ParametricityReport:
    """Outcome of a parametricity check ``T(value, value)``."""

    name: str
    type: Type
    parametric: bool
    violation: Optional[tuple] = None

    def __repr__(self) -> str:
        status = "parametric" if self.parametric else "NOT parametric"
        return f"ParametricityReport({self.name} : {self.type} -- {status})"


def check_parametricity(
    value: object,
    t: Type,
    name: str = "<term>",
    candidates: Optional[Sequence[Candidate]] = None,
    budget: Optional[Budget] = None,
) -> ParametricityReport:
    """Test Theorem 4.4 for ``value : t``: does ``T(value, value)`` hold?

    ``value`` is a runtime value from the evaluator (a
    :class:`PolyValue` for polymorphic terms).  The check is exact over
    the candidate family and the enumeration budget."""
    rel = logical_relation(t, candidates=candidates)
    budget = budget or Budget(max_list_len=2, max_set_size=2, max_pairs=50_000)
    if isinstance(rel, (ForAllRel, FuncRel)):
        violation = rel.witness_violation(value, value, budget)
        return ParametricityReport(name, t, violation is None, violation)
    ok = rel.holds(value, value)
    return ParametricityReport(name, t, ok)
