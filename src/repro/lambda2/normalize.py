r"""Syntactic normalization for System F terms.

Capture-avoiding substitution and fuel-bounded normal-order reduction:
beta (``(\x:T. b) a``), type-beta (``(/\X. b)[T]``) and tuple
projection redexes.  Complements the environment evaluator — the
evaluator produces semantic values, the normalizer produces *terms*, so
equational reasoning (e.g. that a derived definition unfolds to the
expected combinator) can be tested syntactically.
"""

from __future__ import annotations

import itertools

from ..types.ast import Type, substitute as type_substitute
from .syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, Term, TLam, Var

__all__ = ["free_vars", "substitute", "normalize", "NormalizationError"]


class NormalizationError(Exception):
    """Raised when reduction exceeds the fuel bound."""


def free_vars(term: Term) -> frozenset[str]:
    """Free *value* variables of a term."""
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, (Lit, Const)):
        return frozenset()
    if isinstance(term, Lam):
        return free_vars(term.body) - {term.var}
    if isinstance(term, TLam):
        return free_vars(term.body)
    if isinstance(term, App):
        return free_vars(term.fn) | free_vars(term.arg)
    if isinstance(term, TApp):
        return free_vars(term.term)
    if isinstance(term, MkTuple):
        out: frozenset[str] = frozenset()
        for item in term.items:
            out |= free_vars(item)
        return out
    if isinstance(term, Proj):
        return free_vars(term.term)
    raise TypeError(f"unknown term node: {term!r}")


def _fresh(base: str, avoid: frozenset[str]) -> str:
    if base not in avoid:
        return base
    for i in itertools.count(1):
        candidate = f"{base}_{i}"
        if candidate not in avoid:
            return candidate
    raise AssertionError("unreachable")


def substitute(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding substitution ``term[replacement / name]``."""
    if isinstance(term, Var):
        return replacement if term.name == name else term
    if isinstance(term, (Lit, Const)):
        return term
    if isinstance(term, Lam):
        if term.var == name:
            return term
        incoming = free_vars(replacement)
        var = term.var
        body = term.body
        if var in incoming:
            var = _fresh(var, incoming | free_vars(body) | {name})
            body = substitute(body, term.var, Var(var))
        return Lam(var, term.var_type, substitute(body, name, replacement))
    if isinstance(term, TLam):
        return TLam(
            term.var, substitute(term.body, name, replacement),
            term.requires_eq,
        )
    if isinstance(term, App):
        return App(
            substitute(term.fn, name, replacement),
            substitute(term.arg, name, replacement),
        )
    if isinstance(term, TApp):
        return TApp(substitute(term.term, name, replacement), term.type_arg)
    if isinstance(term, MkTuple):
        return MkTuple(
            tuple(substitute(item, name, replacement) for item in term.items)
        )
    if isinstance(term, Proj):
        return Proj(substitute(term.term, name, replacement), term.index)
    raise TypeError(f"unknown term node: {term!r}")


def _substitute_type(term: Term, name: str, t: Type) -> Term:
    """Substitute a type for a type variable throughout a term."""
    subst = {name: t}
    if isinstance(term, (Var, Lit, Const)):
        return term
    if isinstance(term, Lam):
        return Lam(
            term.var,
            type_substitute(term.var_type, subst),
            _substitute_type(term.body, name, t),
        )
    if isinstance(term, TLam):
        if term.var == name:
            return term
        return TLam(
            term.var, _substitute_type(term.body, name, t), term.requires_eq
        )
    if isinstance(term, App):
        return App(
            _substitute_type(term.fn, name, t),
            _substitute_type(term.arg, name, t),
        )
    if isinstance(term, TApp):
        return TApp(
            _substitute_type(term.term, name, t),
            type_substitute(term.type_arg, subst),
        )
    if isinstance(term, MkTuple):
        return MkTuple(
            tuple(_substitute_type(item, name, t) for item in term.items)
        )
    if isinstance(term, Proj):
        return Proj(_substitute_type(term.term, name, t), term.index)
    raise TypeError(f"unknown term node: {term!r}")


def _step(term: Term):
    """One normal-order reduction step, or None at normal form."""
    if isinstance(term, App):
        if isinstance(term.fn, Lam):
            return substitute(term.fn.body, term.fn.var, term.arg)
        reduced = _step(term.fn)
        if reduced is not None:
            return App(reduced, term.arg)
        reduced = _step(term.arg)
        if reduced is not None:
            return App(term.fn, reduced)
        return None
    if isinstance(term, TApp):
        if isinstance(term.term, TLam):
            return _substitute_type(
                term.term.body, term.term.var, term.type_arg
            )
        reduced = _step(term.term)
        if reduced is not None:
            return TApp(reduced, term.type_arg)
        return None
    if isinstance(term, Proj):
        if isinstance(term.term, MkTuple):
            if 0 <= term.index < len(term.term.items):
                return term.term.items[term.index]
        reduced = _step(term.term)
        if reduced is not None:
            return Proj(reduced, term.index)
        return None
    if isinstance(term, Lam):
        reduced = _step(term.body)
        if reduced is not None:
            return Lam(term.var, term.var_type, reduced)
        return None
    if isinstance(term, TLam):
        reduced = _step(term.body)
        if reduced is not None:
            return TLam(term.var, reduced, term.requires_eq)
        return None
    if isinstance(term, MkTuple):
        for i, item in enumerate(term.items):
            reduced = _step(item)
            if reduced is not None:
                items = list(term.items)
                items[i] = reduced
                return MkTuple(tuple(items))
        return None
    return None


def normalize(term: Term, fuel: int = 10_000) -> Term:
    """Reduce ``term`` to normal form (normal-order), bounded by ``fuel``.

    System F is strongly normalizing, so on typeable terms this always
    terminates; the fuel guards untypeable inputs (e.g. self-application
    written directly in the untyped AST)."""
    current = term
    for _ in range(fuel):
        reduced = _step(current)
        if reduced is None:
            return current
        current = reduced
    raise NormalizationError(f"no normal form within {fuel} steps")
