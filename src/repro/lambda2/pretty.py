r"""Precedence-aware pretty printer for System F terms.

Produces text the parser (:mod:`repro.lambda2.parser`) accepts, so
``parse_term(pretty(t))`` round-trips — property-tested in
``tests/test_properties.py``.  Binder types that contain quantifiers
are parenthesized, matching the parser's binder-type rule.
"""

from __future__ import annotations

from ..types.ast import ForAll, Type, contains_constructor
from .syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, Term, TLam, Var

__all__ = ["pretty"]

# Precedence levels: atoms bind tightest, applications next, binders last.
_ATOM = 3
_APP = 2
_BINDER = 1


def _binder_type_text(t: Type) -> str:
    text = str(t)
    if contains_constructor(t, ForAll):
        return f"({text})"
    return text


def _go(term: Term, level: int) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return term.name
    if isinstance(term, Lit):
        if term.value is True:
            return "true"
        if term.value is False:
            return "false"
        return repr(term.value)
    if isinstance(term, MkTuple):
        return "(" + ", ".join(_go(e, _BINDER) for e in term.items) + ")"
    if isinstance(term, Proj):
        return f"{_go(term.term, _ATOM)}#{term.index}"
    if isinstance(term, App):
        text = f"{_go(term.fn, _APP)} {_go(term.arg, _ATOM)}"
        return f"({text})" if level > _APP else text
    if isinstance(term, TApp):
        # Type application is postfix at atom level: a TApp of an
        # application must parenthesize its head.
        text = f"{_go(term.term, _ATOM)}[{term.type_arg}]"
        return f"({text})" if level > _ATOM else text
    if isinstance(term, Lam):
        text = (
            f"\\{term.var}:{_binder_type_text(term.var_type)}. "
            f"{_go(term.body, _BINDER)}"
        )
        return f"({text})" if level > _BINDER else text
    if isinstance(term, TLam):
        eq = "=" if term.requires_eq else ""
        text = f"/\\{term.var}{eq}. {_go(term.body, _BINDER)}"
        return f"({text})" if level > _BINDER else text
    raise TypeError(f"unknown term node: {term!r}")


def pretty(term: Term) -> str:
    """Render ``term`` in the parser's concrete syntax."""
    return _go(term, _BINDER)
