"""The polymorphic prelude: the paper's Section 4 example functions.

Lists are definable in the pure 2nd-order lambda calculus via the
Boehm-Berarducci encoding; as is standard, we make the encoding's
constructors and eliminator *primitive* (``nil``, ``cons``, ``foldr``)
together with ``if``, the integer primitives ``0``/``succ`` used by
``count``, and equality at eq-types for list difference.  Everything
else — identity, append (the paper's ``#``), map, count, reverse,
filter (the list ``sigma``) — is *derived inside the calculus* and
type-checked against its declared polymorphic type.

``zip``, ``head`` and ``list_difference`` are native (zip and head are
lambda-definable but only with clumsy encodings; difference genuinely
needs equality, which is the paper's point about ``forall X=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types.ast import BOOL, INT, Type
from ..types.parser import parse_type
from ..types.values import CVList, Tup
from .eval import evaluate
from .syntax import (
    App,
    Const,
    Lit,
    MkTuple,
    Proj,
    Term,
    Var,
    app,
    lam,
    tapp,
    tlam,
)
from .typecheck import Context, check_term
from ..types.ast import FuncType, ListType, Product, TypeVar

__all__ = ["PreludeEntry", "Prelude", "build_prelude"]

_X = TypeVar("X")
_Y = TypeVar("Y")
_XEQ = TypeVar("X", requires_eq=True)


@dataclass
class PreludeEntry:
    """One prelude definition: declared type, term (if derived), value."""

    name: str
    type: Type
    value: object
    term: Optional[Term] = None

    @property
    def native(self) -> bool:
        return self.term is None


class Prelude:
    """The checked, evaluated prelude."""

    def __init__(self) -> None:
        self.entries: dict[str, PreludeEntry] = {}

    def add_native(self, name: str, type_text: str, value: object) -> PreludeEntry:
        entry = PreludeEntry(name, parse_type(type_text), value)
        self.entries[name] = entry
        return entry

    def add_derived(self, name: str, type_text: str, term: Term) -> PreludeEntry:
        """Type-check ``term`` against the declared type, then evaluate it."""
        declared = parse_type(type_text)
        check_term(term, declared, self.context())
        value = evaluate(term, constants=self.constant_values())
        entry = PreludeEntry(name, declared, value, term)
        self.entries[name] = entry
        return entry

    def context(self) -> Context:
        """Typing context exposing every entry as a constant."""
        return Context(constants={n: e.type for n, e in self.entries.items()})

    def constant_values(self) -> dict[str, object]:
        return {n: e.value for n, e in self.entries.items()}

    def __getitem__(self, name: str) -> PreludeEntry:
        return self.entries[name]

    def value(self, name: str) -> object:
        return self.entries[name].value

    def type_of(self, name: str) -> Type:
        return self.entries[name].type

    def names(self) -> list[str]:
        return sorted(self.entries)


def _native_foldr(f):
    def with_zero(z):
        def with_list(l: CVList):
            out = z
            for item in reversed(list(l)):
                out = f(item)(out)
            return out

        return with_list

    return with_zero


def _native_zip(pair: Tup) -> CVList:
    left, right = pair
    return CVList(Tup((a, b)) for a, b in zip(left, right))


def _native_difference(pair: Tup) -> CVList:
    left, right = pair
    removed = set(right)
    return CVList(x for x in left if x not in removed)


def build_prelude() -> Prelude:
    """Construct and check the full prelude."""
    p = Prelude()

    # --- native core -----------------------------------------------------
    p.add_native("nil", "forall X. <X>", CVList())
    p.add_native("cons", "forall X. X -> <X> -> <X>",
                 lambda x: lambda l: l.cons(x))
    p.add_native(
        "foldr",
        "forall X. forall Y. (X -> Y -> Y) -> Y -> <X> -> Y",
        _native_foldr,
    )
    p.add_native("if", "forall X. bool -> X -> X -> X",
                 lambda b: lambda t: lambda e: t if b else e)
    p.add_native("succ", "int -> int", lambda n: n + 1)
    p.add_native("plus", "int -> int -> int", lambda m: lambda n: m + n)
    p.add_native("eq", "forall X=. X= -> X= -> bool",
                 lambda x: lambda y: x == y)
    p.add_native("zip", "forall X. forall Y. <X> * <Y> -> <X * Y>", _native_zip)
    p.add_native("head", "forall X. <X> -> X", lambda l: l[0])
    p.add_native(
        "difference",
        "forall X=. <X=> * <X=> -> <X=>",
        _native_difference,
    )

    # --- derived in the calculus ------------------------------------------
    # I = /\X. \x:X. x
    p.add_derived("id", "forall X. X -> X", tlam("X", lam("x", _X, Var("x"))))

    # append (the paper's #):
    #   /\X. \p:<X>*<X>. foldr[X][<X>] (\h:X.\t:<X>. cons[X] h t) p.1 p.0
    list_x = ListType(_X)
    append_body = lam(
        "p",
        Product((list_x, list_x)),
        app(
            tapp(Const("foldr"), _X, list_x),
            lam("h", _X, lam("t", list_x,
                             app(tapp(Const("cons"), _X), Var("h"), Var("t")))),
            Proj(Var("p"), 1),
            Proj(Var("p"), 0),
        ),
    )
    p.add_derived("append", "forall X. <X> * <X> -> <X>", tlam("X", append_body))

    # map = /\X./\Y. \f:X->Y. \l:<X>.
    #         foldr[X][<Y>] (\h:X.\t:<Y>. cons[Y] (f h) t) nil[Y] l
    list_y = ListType(_Y)
    map_body = lam(
        "f",
        FuncType(_X, _Y),
        lam(
            "l",
            list_x,
            app(
                tapp(Const("foldr"), _X, list_y),
                lam("h", _X, lam("t", list_y,
                                 app(tapp(Const("cons"), _Y),
                                     App(Var("f"), Var("h")), Var("t")))),
                tapp(Const("nil"), _Y),
                Var("l"),
            ),
        ),
    )
    p.add_derived(
        "map", "forall X. forall Y. (X -> Y) -> <X> -> <Y>",
        tlam("X", tlam("Y", map_body)),
    )

    # count = /\X. \l:<X>. foldr[X][int] (\h:X.\n:int. succ n) 0 l
    count_body = lam(
        "l",
        list_x,
        app(
            tapp(Const("foldr"), _X, INT),
            lam("h", _X, lam("n", INT, App(Const("succ"), Var("n")))),
            Lit(0, INT),
            Var("l"),
        ),
    )
    p.add_derived("count", "forall X. <X> -> int", tlam("X", count_body))

    # reverse = /\X. \l:<X>.
    #   foldr[X][<X>] (\h:X.\t:<X>. append[X] (t, cons[X] h nil[X])) nil[X] l
    snoc = lam(
        "h",
        _X,
        lam(
            "t",
            list_x,
            App(
                tapp(Const("append"), _X),
                MkTuple(
                    (
                        Var("t"),
                        app(tapp(Const("cons"), _X), Var("h"),
                            tapp(Const("nil"), _X)),
                    )
                ),
            ),
        ),
    )
    reverse_body = lam(
        "l",
        list_x,
        app(tapp(Const("foldr"), _X, list_x), snoc,
            tapp(Const("nil"), _X), Var("l")),
    )
    p.add_derived("reverse", "forall X. <X> -> <X>", tlam("X", reverse_body))

    # filter (list sigma) = /\X. \pr:X->bool. \l:<X>.
    #   foldr[X][<X>] (\h.\t. if[<X>] (pr h) (cons h t) t) nil[X] l
    filter_body = lam(
        "pr",
        FuncType(_X, BOOL),
        lam(
            "l",
            list_x,
            app(
                tapp(Const("foldr"), _X, list_x),
                lam(
                    "h",
                    _X,
                    lam(
                        "t",
                        list_x,
                        app(
                            tapp(Const("if"), list_x),
                            App(Var("pr"), Var("h")),
                            app(tapp(Const("cons"), _X), Var("h"), Var("t")),
                            Var("t"),
                        ),
                    ),
                ),
                tapp(Const("nil"), _X),
                Var("l"),
            ),
        ),
    )
    p.add_derived(
        "filter", "forall X. (X -> bool) -> <X> -> <X>",
        tlam("X", filter_body),
    )

    # ins (list version of Section 4.3's ins_c) = cons with argument order
    # matching ins : forall X. X -> <X> -> <X>
    p.add_derived(
        "ins",
        "forall X. X -> <X> -> <X>",
        tlam(
            "X",
            lam("c", _X, lam("l", list_x,
                             app(tapp(Const("cons"), _X), Var("c"), Var("l")))),
        ),
    )

    # ext (Example 4.14's non-LtoS function; concatMap):
    #   /\X./\Y. \f:X -> <Y>. \l:<X>.
    #     foldr[X][<Y>] (\h:X.\t:<Y>. append[Y] (f h, t)) nil[Y] l
    # Parametric at the list level (Thm 4.4) — but its type is NOT LtoS
    # (<Y> occurs under the arrow of its functional argument), so the
    # list-to-set transfer of Section 4.2 does not apply to it.
    ext_body = lam(
        "f",
        FuncType(_X, list_y),
        lam(
            "l",
            list_x,
            app(
                tapp(Const("foldr"), _X, list_y),
                lam(
                    "h",
                    _X,
                    lam(
                        "t",
                        list_y,
                        App(
                            tapp(Const("append"), _Y),
                            MkTuple((App(Var("f"), Var("h")), Var("t"))),
                        ),
                    ),
                ),
                tapp(Const("nil"), _Y),
                Var("l"),
            ),
        ),
    )
    p.add_derived(
        "ext",
        "forall X. forall Y. (X -> <Y>) -> <X> -> <Y>",
        tlam("X", tlam("Y", ext_body)),
    )

    return p
