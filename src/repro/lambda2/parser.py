r"""A concrete syntax for System F terms.

Grammar (``\`` is lambda, ``/\`` is type abstraction)::

    term  ::= '\' IDENT ':' btype '.' term
            | '/\' IDENT ['='] '.' term
            | app
    app   ::= atom (atom | '[' type ']')*          left-assoc
    atom  ::= IDENT                                variable or constant
            | INT | 'true' | 'false'               literals
            | '(' term (',' term)* ')'             grouping / tuples
            | atom '#' INT                         projection (0-based)
    btype ::= '(' type ')'                         parenthesized, or
            | type-without-top-level-dot           simple types

Binder types containing ``forall`` (whose syntax uses ``.``) must be
parenthesized: ``\l:(forall R. (X -> R -> R) -> R -> R). ...``.

Identifiers are resolved as bound variables first, then as prelude
constants.  Examples::

    parse_term(r"/\X. \x:X. x")
    parse_term(r"/\X. \p:<X> * <X>. foldr[X][<X>] cons[X] (p#1) (p#0)")
"""

from __future__ import annotations

import re

from ..types.ast import Type
from ..types.parser import parse_type
from .syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, Term, TLam, Var
from ..types.ast import BOOL, INT

__all__ = ["parse_term", "TermParseError"]


class TermParseError(Exception):
    """Raised on malformed term text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<TLAM>/\\)
  | (?P<LAM>\\)
  | (?P<TRUE>true\b)
  | (?P<FALSE>false\b)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<NUMBER>-?\d+)
  | (?P<LBRACK>\[)
  | (?P<RBRACK>\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<COLON>:)
  | (?P<DOT>\.)
  | (?P<HASH>\#)
  | (?P<EQ>=)
  | (?P<TYPECHAR>[<>{}|*\-])
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str):
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise TermParseError(f"bad character {text[pos]!r} at {pos}")
        if match.lastgroup != "WS":
            yield match.lastgroup, match.group(), match.start(), match.end()
        pos = match.end()
    yield "EOF", "", len(text), len(text)


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str) -> str:
        got, value, _s, _e = self._advance()
        if got != kind:
            raise TermParseError(
                f"expected {kind}, got {got} ({value!r}) in {self._text!r}"
            )
        return value

    # -- type slices --------------------------------------------------

    def _binder_type(self) -> Type:
        """Parse the type between ':' and the binder's '.'.

        Tokens are consumed up to the first '.' at bracket depth zero;
        a ``forall`` inside the type must therefore be parenthesized so
        its own '.' sits at positive depth.
        """
        _kind, _value, start, _end = self._peek()
        type_start = start
        depth = 0
        while True:
            token_kind, _v, token_start, _token_end = self._peek()
            if token_kind in ("LPAREN", "LBRACK"):
                depth += 1
            elif token_kind in ("RPAREN", "RBRACK"):
                depth -= 1
            elif token_kind == "DOT" and depth == 0:
                text = self._text[type_start:token_start]
                if not text.strip():
                    raise TermParseError("empty binder type")
                return parse_type(text)
            elif token_kind == "EOF":
                raise TermParseError("binder type missing terminating '.'")
            self._advance()

    def _bracket_type(self) -> Type:
        """Parse the type inside ``[...]`` of a type application."""
        self._expect("LBRACK")
        depth = 0
        type_start = self._tokens[self._pos][2]
        while True:
            token_kind, _v, token_start, _token_end = self._advance()
            if token_kind == "LBRACK":
                depth += 1
            elif token_kind == "RBRACK":
                if depth == 0:
                    return parse_type(self._text[type_start:token_start])
                depth -= 1
            elif token_kind == "EOF":
                raise TermParseError("unterminated type application")

    # -- terms --------------------------------------------------------

    def parse(self) -> Term:
        term = self._term()
        self._expect("EOF")
        return term

    def _term(self) -> Term:
        kind, _value, _s, _e = self._peek()
        if kind == "LAM":
            self._advance()
            var = self._expect("IDENT")
            self._expect("COLON")
            var_type = self._binder_type()
            self._expect("DOT")
            return Lam(var, var_type, self._term())
        if kind == "TLAM":
            self._advance()
            var = self._expect("IDENT")
            requires_eq = False
            if self._peek()[0] == "EQ":
                self._advance()
                requires_eq = True
            self._expect("DOT")
            return TLam(var, self._term(), requires_eq)
        return self._app()

    def _app(self) -> Term:
        term = self._atom()
        while True:
            kind = self._peek()[0]
            if kind in ("IDENT", "NUMBER", "TRUE", "FALSE", "LPAREN",
                        "LAM", "TLAM"):
                term = App(term, self._atom())
            else:
                return term

    def _atom(self) -> Term:
        kind, value, _s, _e = self._advance()
        if kind == "IDENT":
            return self._postfix(Var(value))
        if kind == "NUMBER":
            return self._postfix(Lit(int(value), INT))
        if kind == "TRUE":
            return self._postfix(Lit(True, BOOL))
        if kind == "FALSE":
            return self._postfix(Lit(False, BOOL))
        if kind == "LPAREN":
            if self._peek()[0] in ("LAM", "TLAM"):
                term = self._term()
            else:
                term = self._app_or_term()
            items = [term]
            while self._peek()[0] == "COMMA":
                self._advance()
                items.append(self._app_or_term())
            self._expect("RPAREN")
            if len(items) == 1:
                return self._postfix(items[0])
            return self._postfix(MkTuple(tuple(items)))
        raise TermParseError(f"unexpected token {value!r} in {self._text!r}")

    def _app_or_term(self) -> Term:
        if self._peek()[0] in ("LAM", "TLAM"):
            return self._term()
        return self._app()

    def _postfix(self, term: Term) -> Term:
        # Type application and projection bind tighter than application:
        # ``f nil[X]`` reads as ``f (nil[X])``.
        while True:
            kind = self._peek()[0]
            if kind == "HASH":
                self._advance()
                index = int(self._expect("NUMBER"))
                term = Proj(term, index)
            elif kind == "LBRACK":
                term = TApp(term, self._bracket_type())
            else:
                return term


def _resolve_constants(term: Term, bound: frozenset[str], constants) -> Term:
    """Turn free variables naming prelude constants into Const nodes."""
    if isinstance(term, Var):
        if term.name not in bound and term.name in constants:
            return Const(term.name)
        return term
    if isinstance(term, Lam):
        return Lam(
            term.var,
            term.var_type,
            _resolve_constants(term.body, bound | {term.var}, constants),
        )
    if isinstance(term, TLam):
        return TLam(
            term.var,
            _resolve_constants(term.body, bound, constants),
            term.requires_eq,
        )
    if isinstance(term, App):
        return App(
            _resolve_constants(term.fn, bound, constants),
            _resolve_constants(term.arg, bound, constants),
        )
    if isinstance(term, TApp):
        return TApp(
            _resolve_constants(term.term, bound, constants), term.type_arg
        )
    if isinstance(term, MkTuple):
        return MkTuple(
            tuple(_resolve_constants(t, bound, constants) for t in term.items)
        )
    if isinstance(term, Proj):
        return Proj(_resolve_constants(term.term, bound, constants), term.index)
    return term


def parse_term(text: str, constants=None) -> Term:
    """Parse a System F term.

    ``constants`` is an iterable of names (typically
    ``prelude.entries``) resolved to :class:`Const` nodes when they
    occur free; everything else stays a :class:`Var`.
    """
    term = _Parser(text).parse()
    if constants is not None:
        term = _resolve_constants(term, frozenset(), set(constants))
    return term
