"""Free theorems: human-readable consequences of parametricity.

Wadler's "Theorems for free!" [15] — cited by the paper as the source of
its parametricity formulation — reads off a theorem about a function
from its type alone.  This module renders that theorem as text (for
documentation and the examples) and specializes it to the *functional*
case: when every quantifier instance is a function ``f``, the relational
statement becomes an equational commutation law, which is exactly how
Section 4.4 derives its optimizer rewrites.

``derive(name, type)`` produces the statement; ``check_functional_instance``
validates the equational specialization on concrete functions/inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..types.ast import (
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeVar,
    strip_foralls,
)
from ..types.values import CVList, CVSet, Tup, Value

__all__ = ["FreeTheorem", "derive", "relational_statement", "check_functional_instance"]


def relational_statement(t: Type, subject: str = "f") -> str:
    """Render the relation ``T(subject, subject)`` as readable text."""
    binders, body = strip_foralls(t)
    lines = []
    for name, requires_eq in binders:
        kind = "injective mappings" if requires_eq else "mappings"
        lines.append(f"for all {kind} {name} : a_{name} x b_{name},")
    lines.append(_render(body, subject, subject))
    return "\n".join(lines)


def _render(t: Type, left: str, right: str) -> str:
    if isinstance(t, FuncType):
        return (
            f"whenever inputs are related by {_rel_text(t.arg)}, "
            f"{left} and {right} produce outputs related by "
            f"{_rel_text(t.result)}"
        )
    return f"{left} and {right} are related by {_rel_text(t)}"


def _rel_text(t: Type) -> str:
    if isinstance(t, TypeVar):
        return t.name
    if isinstance(t, BaseType):
        return f"Id_{t.name}"
    if isinstance(t, Product):
        return " x ".join(_rel_text(c) for c in t.components)
    if isinstance(t, ListType):
        return f"<{_rel_text(t.element)}>"
    if isinstance(t, SetType):
        return "{" + _rel_text(t.element) + "}^rel"
    if isinstance(t, FuncType):
        return f"({_rel_text(t.arg)} -> {_rel_text(t.result)})"
    if isinstance(t, ForAll):
        return f"(forall {t.var}. {_rel_text(t.body)})"
    return str(t)


@dataclass
class FreeTheorem:
    """A derived free theorem for a named polymorphic function."""

    name: str
    type: Type
    statement: str
    functional_law: str

    def __str__(self) -> str:
        return (
            f"Free theorem for {self.name} : {self.type}\n"
            f"{self.statement}\n"
            f"Functional specialization: {self.functional_law}"
        )


def _functional_law(t: Type, name: str) -> str:
    """The equational commutation law for functional quantifier
    instances — the Section 4.4 reading."""
    binders, body = strip_foralls(t)
    if not binders or not isinstance(body, FuncType):
        return f"{name} = {name} (no functional content)"
    variables = ", ".join(b for b, _eq in binders)
    eq_note = any(eq for _b, eq in binders)
    lift_in = _lift_text(body.arg)
    lift_out = _lift_text(body.result)
    law = (
        f"for every {'injective ' if eq_note else ''}function"
        f"{'s' if len(binders) > 1 else ''} {variables}: "
        f"{name}({lift_in}(x)) = {lift_out}({name}(x))"
    )
    return law


def _lift_text(t: Type) -> str:
    if isinstance(t, TypeVar):
        return t.name
    if isinstance(t, BaseType):
        return "id"
    if isinstance(t, Product):
        return "(" + " , ".join(_lift_text(c) for c in t.components) + ")"
    if isinstance(t, ListType):
        return f"map_list({_lift_text(t.element)})"
    if isinstance(t, SetType):
        return f"map_set({_lift_text(t.element)})"
    if isinstance(t, FuncType):
        return f"({_lift_text(t.arg)} => {_lift_text(t.result)})"
    return str(t)


def derive(name: str, t: Type) -> FreeTheorem:
    """Derive the free theorem of ``name : t``."""
    return FreeTheorem(
        name=name,
        type=t,
        statement=relational_statement(t, name),
        functional_law=_functional_law(t, name),
    )


def _lift_value(t: Type, fns: dict[str, Callable[[Value], Value]], v: Value) -> Value:
    """Apply the functional lifting of ``t`` (variables mapped through
    ``fns``, base types through identity) to the value ``v``."""
    if isinstance(t, TypeVar):
        return fns[t.name](v)
    if isinstance(t, BaseType):
        return v
    if isinstance(t, Product):
        return Tup(
            _lift_value(c, fns, item) for c, item in zip(t.components, v)
        )
    if isinstance(t, ListType):
        return CVList(_lift_value(t.element, fns, item) for item in v)
    if isinstance(t, SetType):
        return CVSet(_lift_value(t.element, fns, item) for item in v)
    raise TypeError(f"cannot lift through {t}")


def check_functional_instance(
    theorem: FreeTheorem,
    fn: Callable[[Value], Value],
    instance_fns: dict[str, Callable[[Value], Value]],
    inputs: Sequence[Value],
) -> Optional[tuple[Value, Value, Value]]:
    """Validate the equational law on concrete inputs.

    For each input ``x`` checks ``fn(lift_in(x)) == lift_out(fn(x))``;
    returns the first failure as ``(x, lhs, rhs)`` or ``None``.
    The function's quantifiers must have been specialized so that ``fn``
    is a plain value-level callable.
    """
    _binders, body = strip_foralls(theorem.type)
    if not isinstance(body, FuncType):
        return None
    for x in inputs:
        lhs = fn(_lift_value(body.arg, instance_fns, x))
        rhs = _lift_value(body.result, instance_fns, fn(x))
        if lhs != rhs:
            return (x, lhs, rhs)
    return None
