"""System F (2nd-order lambda calculus) with parametricity (Section 4)."""

from .church import (
    church_append,
    church_cons,
    church_list_type,
    church_nil,
    church_prelude_terms,
    decode_list,
    encode_list,
)
from .eval import EvalError, evaluate
from .free_theorems import (
    FreeTheorem,
    check_functional_instance,
    derive,
    relational_statement,
)
from .normalize import NormalizationError, free_vars, normalize, substitute
from .parser import TermParseError, parse_term
from .pretty import pretty
from .parametricity import (
    Candidate,
    ParametricityReport,
    check_parametricity,
    default_candidates,
    eq_candidates,
    logical_relation,
)
from .prelude import Prelude, PreludeEntry, build_prelude
from .syntax import (
    App,
    Const,
    Lam,
    Lit,
    MkTuple,
    Proj,
    TApp,
    Term,
    TLam,
    Var,
    app,
    lam,
    tapp,
    tlam,
)
from .typecheck import Context, TypeCheckError, check_term, synthesize

__all__ = [name for name in dir() if not name.startswith("_")]
