"""A small concrete syntax for types.

Grammar (right-recursive; ``->`` associates right, ``*`` binds tighter):

.. code-block:: text

    type     ::= 'forall' VAR ['=']'.' type
               | arrow
    arrow    ::= prod ('->' arrow)?
    prod     ::= atom ('*' atom)*
    atom     ::= '{' type '}'          set
               | '{|' type '|}'        bag
               | '<' type '>'          list
               | '(' type ')'
               | IDENT                 base type or type variable

Identifiers that start with an upper-case letter are type variables
(``X``, ``Y1``); a trailing ``=`` marks an eq-variable (``X=``).  All
other identifiers are base types.

Examples::

    parse_type("forall X. {X} * {X} -> {X}")
    parse_type("<int * str>")
    parse_type("forall X=. <X=> * <X=> -> <X=>")
"""

from __future__ import annotations

import re
from typing import Iterator

from .ast import (
    BagType,
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
    TypeVar,
)

__all__ = ["parse_type", "ParseError"]


class ParseError(TypeError_):
    """Raised when a type string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<FORALL>forall\b)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<ARROW>->)
  | (?P<LBAG>\{\|)
  | (?P<RBAG>\|\})
  | (?P<LBRACE>\{)
  | (?P<RBRACE>\})
  | (?P<LANGLE><)
  | (?P<RANGLE>>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<STAR>\*)
  | (?P<DOT>\.)
  | (?P<EQ>=)
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos} in {text!r}")
        kind = match.lastgroup or ""
        if kind != "WS":
            yield kind, match.group()
        pos = match.end()
    yield "EOF", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._pos]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str) -> str:
        got_kind, value = self._advance()
        if got_kind != kind:
            raise ParseError(
                f"expected {kind}, got {got_kind} ({value!r}) in {self._text!r}"
            )
        return value

    def parse(self) -> Type:
        result = self._type()
        self._expect("EOF")
        return result

    def _type(self) -> Type:
        kind, _ = self._peek()
        if kind == "FORALL":
            self._advance()
            var = self._expect("IDENT")
            requires_eq = False
            if self._peek()[0] == "EQ":
                self._advance()
                requires_eq = True
            self._expect("DOT")
            return ForAll(var, self._type(), requires_eq)
        return self._arrow()

    def _arrow(self) -> Type:
        left = self._prod()
        if self._peek()[0] == "ARROW":
            self._advance()
            # The result position admits a quantifier: `a -> forall X. b`
            # reads as `a -> (forall X. b)`.
            return FuncType(left, self._type())
        return left

    def _prod(self) -> Type:
        parts = [self._atom()]
        while self._peek()[0] == "STAR":
            self._advance()
            parts.append(self._atom())
        if len(parts) == 1:
            return parts[0]
        return Product(tuple(parts))

    def _atom(self) -> Type:
        kind, value = self._advance()
        if kind == "LBRACE":
            inner = self._type()
            self._expect("RBRACE")
            return SetType(inner)
        if kind == "LBAG":
            inner = self._type()
            self._expect("RBAG")
            return BagType(inner)
        if kind == "LANGLE":
            inner = self._type()
            self._expect("RANGLE")
            return ListType(inner)
        if kind == "LPAREN":
            if self._peek()[0] == "RPAREN":
                self._advance()
                return Product(())
            inner = self._type()
            self._expect("RPAREN")
            return inner
        if kind == "IDENT":
            if value[0].isupper():
                requires_eq = False
                if self._peek()[0] == "EQ":
                    self._advance()
                    requires_eq = True
                return TypeVar(value, requires_eq)
            return BaseType(value)
        raise ParseError(f"unexpected token {value!r} in {self._text!r}")


def parse_type(text: str) -> Type:
    """Parse a type from its concrete syntax."""
    return _Parser(text).parse()
