"""Complex-value and 2nd-order type ASTs.

This module implements the type languages of the paper:

* **Definition 2.1** — complex value types over a signature: trees whose
  leaves are base types and whose internal nodes are the constructors
  ``x`` (product), ``{}`` (set), ``{||}`` (bag) and ``<>`` (list).
* **Definition 2.7** — type *expressions*: the same trees but with type
  variables at (some of) the leaves, together with substitution and the
  notion of *associated types*.
* **Definition 4.1** — 2nd-order types: the constructors above extended
  with ``->`` (function space) and ``forall X.`` (universal
  quantification), as in System F.

Types are immutable, hashable, and compared structurally (up to alpha
renaming for quantified types, see :func:`alpha_equal`).

The paper also uses *eq-variables* ``X=`` that range only over types
carrying an equality predicate (Section 4.1, list difference).  A
:class:`TypeVar` or :class:`ForAll` can be flagged ``requires_eq`` to
model this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = [
    "Type",
    "BaseType",
    "TypeVar",
    "Product",
    "SetType",
    "BagType",
    "ListType",
    "FuncType",
    "ForAll",
    "INT",
    "BOOL",
    "STR",
    "FLOAT",
    "UNIT",
    "product",
    "set_of",
    "bag_of",
    "list_of",
    "func",
    "forall",
    "tvar",
    "free_type_vars",
    "substitute",
    "alpha_equal",
    "is_monomorphic",
    "is_complex_value_type",
    "contains_constructor",
    "associated_types",
    "strip_foralls",
    "rename_bound",
    "subtypes",
    "constructor_depth",
    "TypeError_",
]


class TypeError_(Exception):
    """Raised for ill-formed types or illegal type operations.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


@dataclass(frozen=True)
class Type:
    """Abstract base class of all type nodes."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    # Convenience constructors so types compose fluently:
    #   INT * STR        -> Product((INT, STR))
    #   INT >> BOOL      -> FuncType(INT, BOOL)
    def __mul__(self, other: "Type") -> "Product":
        left = self.components if isinstance(self, Product) else (self,)
        right = other.components if isinstance(other, Product) else (other,)
        return Product(left + right)

    def __rshift__(self, other: "Type") -> "FuncType":
        return FuncType(self, other)


@dataclass(frozen=True)
class BaseType(Type):
    """An uninterpreted-or-interpreted base type ``d`` of the signature."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TypeVar(Type):
    """A type variable ``X``; ``requires_eq`` marks the paper's ``X=``."""

    name: str
    requires_eq: bool = False

    def __str__(self) -> str:
        return self.name + ("=" if self.requires_eq else "")


@dataclass(frozen=True)
class Product(Type):
    """Product (tuple) type ``t1 x ... x tn``."""

    components: tuple[Type, ...]

    def __post_init__(self) -> None:
        if not all(isinstance(c, Type) for c in self.components):
            raise TypeError_(f"non-type component in product: {self.components!r}")

    @property
    def arity(self) -> int:
        return len(self.components)

    def __str__(self) -> str:
        if not self.components:
            return "unit"
        parts = []
        for c in self.components:
            text = str(c)
            if isinstance(c, (Product, FuncType, ForAll)):
                text = f"({text})"
            parts.append(text)
        return " * ".join(parts)


@dataclass(frozen=True)
class SetType(Type):
    """Finite-set type ``{t}``."""

    element: Type

    def __str__(self) -> str:
        return "{" + str(self.element) + "}"


@dataclass(frozen=True)
class BagType(Type):
    """Bag (multiset) type ``{|t|}``."""

    element: Type

    def __str__(self) -> str:
        return "{|" + str(self.element) + "|}"


@dataclass(frozen=True)
class ListType(Type):
    """List type ``<t>``."""

    element: Type

    def __str__(self) -> str:
        return "<" + str(self.element) + ">"


@dataclass(frozen=True)
class FuncType(Type):
    """Function type ``s -> t`` (Section 4)."""

    arg: Type
    result: Type

    def __str__(self) -> str:
        arg_text = str(self.arg)
        if isinstance(self.arg, (FuncType, ForAll)):
            arg_text = f"({arg_text})"
        return f"{arg_text} -> {self.result}"


@dataclass(frozen=True)
class ForAll(Type):
    """Universally quantified type ``forall X. T`` (Section 4).

    ``requires_eq`` models quantification over eq-types, ``forall X=. T``.
    """

    var: str
    body: Type
    requires_eq: bool = False

    def __str__(self) -> str:
        eq = "=" if self.requires_eq else ""
        return f"forall {self.var}{eq}. {self.body}"


# ---------------------------------------------------------------------------
# Canonical base types.  ``bool`` is required by the paper's signatures
# (Section 2); the others are the usual database base domains.
# ---------------------------------------------------------------------------

INT = BaseType("int")
BOOL = BaseType("bool")
STR = BaseType("str")
FLOAT = BaseType("float")
UNIT = Product(())


# ---------------------------------------------------------------------------
# Fluent constructors.
# ---------------------------------------------------------------------------

def product(*components: Type) -> Product:
    """Build a product type from ``components``."""
    return Product(tuple(components))


def set_of(element: Type) -> SetType:
    """Build the set type ``{element}``."""
    return SetType(element)


def bag_of(element: Type) -> BagType:
    """Build the bag type ``{|element|}``."""
    return BagType(element)


def list_of(element: Type) -> ListType:
    """Build the list type ``<element>``."""
    return ListType(element)


def func(arg: Type, result: Type, *more: Type) -> FuncType:
    """Build a (curried) function type ``arg -> result -> ...``."""
    types = (arg, result, *more)
    out = types[-1]
    for t in reversed(types[:-1]):
        out = FuncType(t, out)
    return out  # type: ignore[return-value]


def forall(var: str, body: Type, requires_eq: bool = False) -> ForAll:
    """Build ``forall var. body``."""
    return ForAll(var, body, requires_eq)


def tvar(name: str, requires_eq: bool = False) -> TypeVar:
    """Build a type variable."""
    return TypeVar(name, requires_eq)


# ---------------------------------------------------------------------------
# Structural operations.
# ---------------------------------------------------------------------------

def free_type_vars(t: Type) -> frozenset[str]:
    """Return the names of the type variables occurring free in ``t``."""
    if isinstance(t, TypeVar):
        return frozenset({t.name})
    if isinstance(t, BaseType):
        return frozenset()
    if isinstance(t, Product):
        out: frozenset[str] = frozenset()
        for c in t.components:
            out |= free_type_vars(c)
        return out
    if isinstance(t, (SetType, BagType, ListType)):
        return free_type_vars(t.element)
    if isinstance(t, FuncType):
        return free_type_vars(t.arg) | free_type_vars(t.result)
    if isinstance(t, ForAll):
        return free_type_vars(t.body) - {t.var}
    raise TypeError_(f"unknown type node: {t!r}")


def _fresh_name(base: str, avoid: frozenset[str]) -> str:
    if base not in avoid:
        return base
    for i in itertools.count(1):
        candidate = f"{base}_{i}"
        if candidate not in avoid:
            return candidate
    raise AssertionError("unreachable")


def substitute(t: Type, subst: Mapping[str, Type]) -> Type:
    """Capture-avoiding substitution of type variables in ``t``.

    ``T(tau1/X1, ..., taun/Xn)`` of Definition 2.7.
    """
    if isinstance(t, TypeVar):
        return subst.get(t.name, t)
    if isinstance(t, BaseType):
        return t
    if isinstance(t, Product):
        return Product(tuple(substitute(c, subst) for c in t.components))
    if isinstance(t, SetType):
        return SetType(substitute(t.element, subst))
    if isinstance(t, BagType):
        return BagType(substitute(t.element, subst))
    if isinstance(t, ListType):
        return ListType(substitute(t.element, subst))
    if isinstance(t, FuncType):
        return FuncType(substitute(t.arg, subst), substitute(t.result, subst))
    if isinstance(t, ForAll):
        inner = {k: v for k, v in subst.items() if k != t.var}
        if not inner:
            return t
        # Avoid capturing free variables of the substituted types.
        incoming: frozenset[str] = frozenset()
        for v in inner.values():
            incoming |= free_type_vars(v)
        var = t.var
        body = t.body
        if var in incoming:
            var = _fresh_name(var, incoming | free_type_vars(body))
            body = substitute(body, {t.var: TypeVar(var, t.requires_eq)})
        return ForAll(var, substitute(body, inner), t.requires_eq)
    raise TypeError_(f"unknown type node: {t!r}")


def rename_bound(t: Type, prefix: str = "X") -> Type:
    """Return an alpha-variant of ``t`` with canonically named binders.

    Useful for normalizing quantified types before comparison.
    """
    counter = itertools.count()

    def walk(node: Type, env: Mapping[str, str]) -> Type:
        if isinstance(node, TypeVar):
            return TypeVar(env.get(node.name, node.name), node.requires_eq)
        if isinstance(node, BaseType):
            return node
        if isinstance(node, Product):
            return Product(tuple(walk(c, env) for c in node.components))
        if isinstance(node, SetType):
            return SetType(walk(node.element, env))
        if isinstance(node, BagType):
            return BagType(walk(node.element, env))
        if isinstance(node, ListType):
            return ListType(walk(node.element, env))
        if isinstance(node, FuncType):
            return FuncType(walk(node.arg, env), walk(node.result, env))
        if isinstance(node, ForAll):
            fresh = f"{prefix}{next(counter)}"
            new_env = dict(env)
            new_env[node.var] = fresh
            return ForAll(fresh, walk(node.body, new_env), node.requires_eq)
        raise TypeError_(f"unknown type node: {node!r}")

    return walk(t, {})


def alpha_equal(a: Type, b: Type) -> bool:
    """Structural equality up to renaming of bound type variables."""
    return rename_bound(a) == rename_bound(b)


def is_monomorphic(t: Type) -> bool:
    """True if ``t`` contains no type variables and no quantifiers."""
    if isinstance(t, (TypeVar, ForAll)):
        return False
    if isinstance(t, BaseType):
        return True
    if isinstance(t, Product):
        return all(is_monomorphic(c) for c in t.components)
    if isinstance(t, (SetType, BagType, ListType)):
        return is_monomorphic(t.element)
    if isinstance(t, FuncType):
        return is_monomorphic(t.arg) and is_monomorphic(t.result)
    raise TypeError_(f"unknown type node: {t!r}")


def is_complex_value_type(t: Type) -> bool:
    """True if ``t`` is a complex value type in the sense of Def 2.1.

    Complex value types use only base types, products, sets, bags and
    lists — no variables, arrows or quantifiers.
    """
    if isinstance(t, BaseType):
        return True
    if isinstance(t, Product):
        return all(is_complex_value_type(c) for c in t.components)
    if isinstance(t, (SetType, BagType, ListType)):
        return is_complex_value_type(t.element)
    return False


def contains_constructor(t: Type, constructor: type) -> bool:
    """True if any node of ``t`` is an instance of ``constructor``."""
    return any(isinstance(node, constructor) for node in subtypes(t))


def subtypes(t: Type) -> Iterator[Type]:
    """Yield every node of the type tree ``t`` (pre-order)."""
    yield t
    if isinstance(t, Product):
        for c in t.components:
            yield from subtypes(c)
    elif isinstance(t, (SetType, BagType, ListType)):
        yield from subtypes(t.element)
    elif isinstance(t, FuncType):
        yield from subtypes(t.arg)
        yield from subtypes(t.result)
    elif isinstance(t, ForAll):
        yield from subtypes(t.body)


def constructor_depth(t: Type) -> int:
    """Maximum nesting depth of bulk constructors (sets/bags/lists)."""
    if isinstance(t, (SetType, BagType, ListType)):
        return 1 + constructor_depth(t.element)
    if isinstance(t, Product):
        return max((constructor_depth(c) for c in t.components), default=0)
    if isinstance(t, FuncType):
        return max(constructor_depth(t.arg), constructor_depth(t.result))
    if isinstance(t, ForAll):
        return constructor_depth(t.body)
    return 0


def associated_types(
    template: Type,
    first: Mapping[str, Type],
    second: Mapping[str, Type],
) -> tuple[Type, Type]:
    """Build the *associated types* of Definition 2.7.

    Given a type expression ``template`` with free variables and two
    substitutions of base types for those variables, return the pair
    ``(T(d/X), T(d'/X))``.
    """
    missing = free_type_vars(template) - set(first) - set(second)
    if free_type_vars(template) - set(first):
        raise TypeError_(f"first substitution misses variables: {sorted(free_type_vars(template) - set(first))}")
    if free_type_vars(template) - set(second):
        raise TypeError_(f"second substitution misses variables: {sorted(missing)}")
    return substitute(template, first), substitute(template, second)


def strip_foralls(t: Type) -> tuple[tuple[tuple[str, bool], ...], Type]:
    """Split ``forall X1. ... forall Xn. T`` into binders and body.

    Returns ``(((name, requires_eq), ...), body)``.  The paper restricts
    quantifiers to the outside of a type (Section 4.2); this helper
    recovers that prefix form.
    """
    binders: list[tuple[str, bool]] = []
    while isinstance(t, ForAll):
        binders.append((t.var, t.requires_eq))
        t = t.body
    return tuple(binders), t
