"""Typed complex values.

The paper's value universe (Section 2) consists of atoms drawn from base
domains, closed under tuple, set, bag and list construction.  We realize
it with four immutable, hashable wrapper classes so that

* sets of sets, sets of tuples of lists, etc. are all well defined;
* products (:class:`Tup`) and lists (:class:`CVList`) are distinct types
  even though both are sequence-like, matching Definition 2.1;
* values can be used as dictionary keys by the mapping machinery.

Atoms are plain Python ``int``/``bool``/``str``/``float`` values.
``bool`` atoms are kept distinct from ``int`` atoms (Python's bool is an
int subclass; we always test ``bool`` first).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

__all__ = [
    "Atom",
    "Value",
    "Tup",
    "CVSet",
    "CVBag",
    "CVList",
    "tup",
    "cvset",
    "cvbag",
    "cvlist",
    "is_atom",
    "is_value",
    "atoms_of",
    "value_depth",
    "value_size",
    "map_atoms",
    "ValueError_",
]

Atom = int | bool | str | float
Value = Any  # Atom | Tup | CVSet | CVBag | CVList


class ValueError_(Exception):
    """Raised for ill-formed complex values."""


def is_atom(v: Value) -> bool:
    """True if ``v`` is an atomic (base-domain) value."""
    return isinstance(v, (bool, int, str, float))


def is_value(v: Value) -> bool:
    """True if ``v`` is a well-formed complex value."""
    if is_atom(v):
        return True
    if isinstance(v, Tup):
        return all(is_value(item) for item in v)
    if isinstance(v, (CVSet, CVList)):
        return all(is_value(item) for item in v)
    if isinstance(v, CVBag):
        return all(is_value(item) for item in v.support())
    return False


@dataclass(frozen=True)
class Tup:
    """An n-tuple (product value)."""

    items: tuple[Value, ...]

    def __init__(self, items: Iterable[Value]) -> None:
        object.__setattr__(self, "items", tuple(items))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Value:
        return self.items[index]

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(x) for x in self.items) + ")"

    def replace(self, index: int, value: Value) -> "Tup":
        """Return a copy with component ``index`` replaced by ``value``."""
        items = list(self.items)
        items[index] = value
        return Tup(items)

    def project(self, indices: Iterable[int]) -> "Tup":
        """Return the sub-tuple at ``indices`` (0-based)."""
        return Tup(self.items[i] for i in indices)


class CVSet:
    """A finite set value, frozenset-backed, hashable."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Value] = ()) -> None:
        self._items = frozenset(items)
        self._hash = hash(("CVSet", self._items))

    def __iter__(self) -> Iterator[Value]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, v: Value) -> bool:
        return v in self._items

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CVSet) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._items:
            return "{}"
        return "{" + ", ".join(repr(x) for x in sorted(self._items, key=repr)) + "}"

    # Set algebra — the substrate for the relational operators.
    def union(self, other: "CVSet") -> "CVSet":
        return CVSet(self._items | other._items)

    def intersection(self, other: "CVSet") -> "CVSet":
        return CVSet(self._items & other._items)

    def difference(self, other: "CVSet") -> "CVSet":
        return CVSet(self._items - other._items)

    def issubset(self, other: "CVSet") -> bool:
        return self._items <= other._items

    def add(self, v: Value) -> "CVSet":
        """Return a new set with ``v`` inserted."""
        return CVSet(self._items | {v})

    def frozen(self) -> frozenset:
        return self._items

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __le__ = issubset


class CVBag:
    """A finite bag (multiset) value, hashable."""

    __slots__ = ("_counts", "_dict", "_len", "_hash")

    def __init__(self, items: Iterable[Value] = ()) -> None:
        counts = Counter(items)
        self._dict = dict(counts)
        self._len = sum(counts.values())
        self._counts = frozenset(counts.items())
        self._hash = hash(("CVBag", self._counts))

    def __iter__(self) -> Iterator[Value]:
        for v, n in self._dict.items():
            for _ in range(n):
                yield v

    def __len__(self) -> int:
        return self._len

    def __contains__(self, v: Value) -> bool:
        return v in self._dict

    def count(self, v: Value) -> int:
        """Multiplicity of ``v`` in the bag — O(1) dict lookup."""
        return self._dict.get(v, 0)

    def support(self) -> frozenset:
        """The set of distinct elements."""
        return frozenset(self._dict)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CVBag) and self._counts == other._counts

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        items = sorted(self, key=repr)
        return "{|" + ", ".join(repr(x) for x in items) + "|}"

    def union(self, other: "CVBag") -> "CVBag":
        """Additive bag union."""
        return CVBag(list(self) + list(other))


class CVList:
    """A finite list value, tuple-backed, hashable."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Value] = ()) -> None:
        self._items = tuple(items)
        self._hash = hash(("CVList", self._items))

    def __iter__(self) -> Iterator[Value]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return CVList(self._items[index])
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CVList) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "<" + ", ".join(repr(x) for x in self._items) + ">"

    def append(self, other: "CVList") -> "CVList":
        """List concatenation — the paper's ``#`` operation."""
        return CVList(self._items + other._items)

    def cons(self, v: Value) -> "CVList":
        """Return a new list with ``v`` prepended."""
        return CVList((v,) + self._items)

    def items(self) -> tuple[Value, ...]:
        return self._items


def tup(*items: Value) -> Tup:
    """Build a tuple value."""
    return Tup(items)


def cvset(*items: Value) -> CVSet:
    """Build a set value."""
    return CVSet(items)


def cvbag(*items: Value) -> CVBag:
    """Build a bag value."""
    return CVBag(items)


def cvlist(*items: Value) -> CVList:
    """Build a list value."""
    return CVList(items)


#: Memo for :func:`atoms_of` on container values.  Values are immutable
#: and hashable, so entries can never go stale; the table is cleared
#: wholesale when it grows past the cap (cheap, and correct).
_ATOMS_MEMO: dict = {}
_ATOMS_MEMO_MAX = 8192


def atoms_of(v: Value) -> frozenset:
    """All atoms occurring anywhere inside ``v`` (the active domain seed).

    Container results are memoized so repeated active-domain sweeps over
    large nested values (the invariance experiments re-walk the same
    instances thousands of times) are O(1) after the first visit.
    """
    if is_atom(v):
        return frozenset({v})
    cached = _ATOMS_MEMO.get(v)
    if cached is not None:
        return cached
    out: set = set()
    if isinstance(v, CVBag):
        items: Iterable[Value] = v.support()
    else:
        items = v
    for item in items:
        out |= atoms_of(item)
    result = frozenset(out)
    if len(_ATOMS_MEMO) >= _ATOMS_MEMO_MAX:
        _ATOMS_MEMO.clear()
    _ATOMS_MEMO[v] = result
    return result


def value_depth(v: Value) -> int:
    """Maximum bulk-constructor nesting depth of ``v``.

    Atoms and tuples of atoms have depth 0; ``{1}`` has depth 1;
    ``{{1}}`` depth 2, and so on.  Used by the nest-parity query of
    Proposition 4.16.
    """
    if is_atom(v):
        return 0
    if isinstance(v, Tup):
        return max((value_depth(item) for item in v), default=0)
    if isinstance(v, CVBag):
        inner = max((value_depth(item) for item in v.support()), default=0)
        return 1 + inner
    inner = max((value_depth(item) for item in v), default=0)
    return 1 + inner


def value_size(v: Value) -> int:
    """Total number of nodes in the value tree (atoms count 1)."""
    if is_atom(v):
        return 1
    if isinstance(v, CVBag):
        return 1 + sum(value_size(item) * v.count(item) for item in v.support())
    return 1 + sum(value_size(item) for item in v)


def map_atoms(v: Value, f) -> Value:
    """Apply the atom-level function ``f`` at every leaf of ``v``.

    This is the extension of a *functional* base mapping to all complex
    values — ``map(f)`` iterated through every constructor.  For general
    (relational) mappings use :mod:`repro.mappings.extensions`.
    """
    if is_atom(v):
        return f(v)
    if isinstance(v, Tup):
        return Tup(map_atoms(item, f) for item in v)
    if isinstance(v, CVSet):
        return CVSet(map_atoms(item, f) for item in v)
    if isinstance(v, CVBag):
        return CVBag(map_atoms(item, f) for item in v)
    if isinstance(v, CVList):
        return CVList(map_atoms(item, f) for item in v)
    raise ValueError_(f"not a complex value: {v!r}")
