"""Checking complex values against complex value types.

``check_value(v, t)`` decides ``v : t`` for monomorphic complex value
types (Definition 2.1).  ``infer_value_type`` computes a best-effort
type for a value — empty collections are typed with a bottom element
type that unifies with anything (:data:`EMPTY`).
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    BOOL,
    FLOAT,
    INT,
    STR,
    BagType,
    BaseType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
)
from .values import CVBag, CVList, CVSet, Tup, Value, is_atom

__all__ = ["check_value", "infer_value_type", "join_types", "EMPTY", "atom_type"]

#: Bottom element type used for empty collections during inference.
EMPTY = BaseType("_empty_")


def atom_type(v: Value) -> BaseType:
    """The base type of an atom (bool checked before int)."""
    if isinstance(v, bool):
        return BOOL
    if isinstance(v, int):
        return INT
    if isinstance(v, float):
        return FLOAT
    if isinstance(v, str):
        return STR
    raise TypeError_(f"not an atom: {v!r}")


def check_value(v: Value, t: Type, custom_domains: Optional[dict] = None) -> bool:
    """Decide whether complex value ``v`` inhabits type ``t``.

    ``custom_domains`` maps base-type names to membership predicates for
    user-defined base types (e.g. an abstract uninterpreted domain
    realized as tagged strings).
    """
    if isinstance(t, BaseType):
        if custom_domains and t.name in custom_domains:
            return is_atom(v) and custom_domains[t.name](v)
        return is_atom(v) and atom_type(v) == t
    if isinstance(t, Product):
        return (
            isinstance(v, Tup)
            and len(v) == len(t.components)
            and all(
                check_value(item, ct, custom_domains)
                for item, ct in zip(v, t.components)
            )
        )
    if isinstance(t, SetType):
        return isinstance(v, CVSet) and all(
            check_value(item, t.element, custom_domains) for item in v
        )
    if isinstance(t, BagType):
        return isinstance(v, CVBag) and all(
            check_value(item, t.element, custom_domains) for item in v.support()
        )
    if isinstance(t, ListType):
        return isinstance(v, CVList) and all(
            check_value(item, t.element, custom_domains) for item in v
        )
    return False


def join_types(a: Type, b: Type) -> Type:
    """Least upper bound of two inferred types, treating EMPTY as bottom.

    Raises :class:`TypeError_` when the types are incompatible.
    """
    if a == EMPTY:
        return b
    if b == EMPTY:
        return a
    if a == b:
        return a
    if isinstance(a, SetType) and isinstance(b, SetType):
        return SetType(join_types(a.element, b.element))
    if isinstance(a, BagType) and isinstance(b, BagType):
        return BagType(join_types(a.element, b.element))
    if isinstance(a, ListType) and isinstance(b, ListType):
        return ListType(join_types(a.element, b.element))
    if (
        isinstance(a, Product)
        and isinstance(b, Product)
        and len(a.components) == len(b.components)
    ):
        return Product(
            tuple(join_types(x, y) for x, y in zip(a.components, b.components))
        )
    raise TypeError_(f"incompatible value types: {a} vs {b}")


def infer_value_type(v: Value) -> Type:
    """Infer the (monomorphic) type of a complex value.

    Heterogeneous collections raise :class:`TypeError_`; empty
    collections get element type :data:`EMPTY`.
    """
    if is_atom(v):
        return atom_type(v)
    if isinstance(v, Tup):
        return Product(tuple(infer_value_type(item) for item in v))
    if isinstance(v, CVSet):
        element = EMPTY
        for item in v:
            element = join_types(element, infer_value_type(item))
        return SetType(element)
    if isinstance(v, CVBag):
        element = EMPTY
        for item in v.support():
            element = join_types(element, infer_value_type(item))
        return BagType(element)
    if isinstance(v, CVList):
        element = EMPTY
        for item in v:
            element = join_types(element, infer_value_type(item))
        return ListType(element)
    raise TypeError_(f"not a complex value: {v!r}")
