"""Complex-value and 2nd-order type system (paper Sections 2 and 4).

Public surface: the type AST (:mod:`repro.types.ast`), value wrappers
(:mod:`repro.types.values`), value typing (:mod:`repro.types.typecheck`),
a concrete type syntax (:mod:`repro.types.parser`) and signatures with
interpreted symbols (:mod:`repro.types.signatures`).
"""

from .ast import (
    BOOL,
    FLOAT,
    INT,
    STR,
    UNIT,
    BagType,
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
    TypeVar,
    alpha_equal,
    associated_types,
    bag_of,
    constructor_depth,
    contains_constructor,
    forall,
    free_type_vars,
    func,
    is_complex_value_type,
    is_monomorphic,
    list_of,
    product,
    set_of,
    strip_foralls,
    substitute,
    subtypes,
    tvar,
)
from .parser import ParseError, parse_type
from .signatures import ABSTRACT, Interpreted, Signature, standard_signature, uninterpreted_signature
from .typecheck import EMPTY, check_value, infer_value_type, join_types
from .values import (
    CVBag,
    CVList,
    CVSet,
    Tup,
    Value,
    ValueError_,
    atoms_of,
    cvbag,
    cvlist,
    cvset,
    is_atom,
    is_value,
    map_atoms,
    tup,
    value_depth,
    value_size,
)

__all__ = [name for name in dir() if not name.startswith("_")]
