"""Signatures: base types with interpreted functions and predicates.

Section 2 assumes databases are defined over a signature Sigma — a
collection of base types with interpreted functions and predicates,
always containing ``bool``.  Genericity w.r.t. second-order constants
(Section 2.5) quantifies over mappings that *preserve* some of these
interpreted symbols, so the signature is a first-class runtime object
here: it carries callables alongside their declared types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .ast import BOOL, FLOAT, INT, STR, BaseType, FuncType, Type, TypeError_
from .values import Value

__all__ = [
    "Interpreted",
    "Signature",
    "standard_signature",
    "uninterpreted_signature",
    "ABSTRACT",
]

#: The classical "abstract domain of uninterpreted elements".  Its
#: members are plain strings by convention; only equality is available
#: at the metalevel, and even that is *not* part of the signature.
ABSTRACT = BaseType("dom")


@dataclass(frozen=True)
class Interpreted:
    """An interpreted function or predicate of the signature.

    ``arg_types``/``result_type`` give its declared (first-order) type;
    ``fn`` is the Python implementation.  A predicate is simply an
    interpreted symbol whose result type is ``bool``.
    """

    name: str
    arg_types: tuple[Type, ...]
    result_type: Type
    fn: Callable[..., Value]

    @property
    def is_predicate(self) -> bool:
        return self.result_type == BOOL

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    @property
    def type(self) -> Type:
        """The symbol's type as a (curried) function type."""
        out: Type = self.result_type
        for t in reversed(self.arg_types):
            out = FuncType(t, out)
        return out

    def __call__(self, *args: Value) -> Value:
        if len(args) != self.arity:
            raise TypeError_(
                f"{self.name} expects {self.arity} arguments, got {len(args)}"
            )
        return self.fn(*args)


@dataclass
class Signature:
    """A collection of base types plus their interpreted symbols."""

    base_types: dict[str, BaseType] = field(default_factory=dict)
    symbols: dict[str, Interpreted] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The paper requires Sigma to contain bool.
        self.base_types.setdefault("bool", BOOL)

    def add_base_type(self, name: str) -> BaseType:
        """Declare (or return the existing) base type ``name``."""
        if name not in self.base_types:
            self.base_types[name] = BaseType(name)
        return self.base_types[name]

    def add_symbol(
        self,
        name: str,
        arg_types: Iterable[Type],
        result_type: Type,
        fn: Callable[..., Value],
    ) -> Interpreted:
        """Declare an interpreted function or predicate."""
        symbol = Interpreted(name, tuple(arg_types), result_type, fn)
        self.symbols[name] = symbol
        return symbol

    def __getitem__(self, name: str) -> Interpreted:
        return self.symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def functions(self) -> list[Interpreted]:
        """All non-predicate symbols."""
        return [s for s in self.symbols.values() if not s.is_predicate]

    def predicates(self) -> list[Interpreted]:
        """All predicate symbols."""
        return [s for s in self.symbols.values() if s.is_predicate]


def standard_signature() -> Signature:
    """The usual database signature: int, str, float, bool with
    arithmetic, comparisons and equality per base type."""
    sig = Signature()
    for t in (INT, STR, FLOAT, BOOL):
        sig.base_types[t.name] = t

    sig.add_symbol("succ", (INT,), INT, lambda x: x + 1)
    sig.add_symbol("plus", (INT, INT), INT, lambda x, y: x + y)
    sig.add_symbol("times", (INT, INT), INT, lambda x, y: x * y)
    sig.add_symbol("neg", (INT,), INT, lambda x: -x)
    sig.add_symbol("eq_int", (INT, INT), BOOL, lambda x, y: x == y)
    sig.add_symbol("lt", (INT, INT), BOOL, lambda x, y: x < y)
    sig.add_symbol("gt", (INT, INT), BOOL, lambda x, y: x > y)
    sig.add_symbol("even", (INT,), BOOL, lambda x: x % 2 == 0)
    sig.add_symbol("eq_str", (STR, STR), BOOL, lambda x, y: x == y)
    sig.add_symbol("concat", (STR, STR), STR, lambda x, y: x + y)
    sig.add_symbol("not", (BOOL,), BOOL, lambda x: not x)
    sig.add_symbol("and", (BOOL, BOOL), BOOL, lambda x, y: x and y)
    sig.add_symbol("or", (BOOL, BOOL), BOOL, lambda x, y: x or y)
    return sig


def uninterpreted_signature(extra_domains: Optional[Iterable[str]] = None) -> Signature:
    """The classical relational setting: abstract domains, no symbols.

    This is the world of [2, 7] where data values are uninterpreted and
    queries must be invariant under renaming.  ``extra_domains`` adds
    further abstract base types beyond the default ``dom``.
    """
    sig = Signature()
    sig.base_types[ABSTRACT.name] = ABSTRACT
    for name in extra_domains or ():
        sig.add_base_type(name)
    return sig
