"""Deterministic multiprocess sweep harness.

:func:`parallel_map` is the primitive (contiguous chunking, ordered
merge, serial reference path at ``jobs <= 1``);
:mod:`~repro.parallel.sweeps` applies it to the genericity
classification grid.  The contract everywhere: ``jobs=N`` output is
byte-identical to ``jobs=1`` output.  See ``docs/EXECUTION.md``.
"""

from .runner import chunked, default_jobs, parallel_map
from .sweeps import (
    CellVerdict,
    invariance_tasks,
    render_verdicts,
    run_invariance_cell,
    sweep_invariance,
    tightest,
)

__all__ = [
    "chunked",
    "default_jobs",
    "parallel_map",
    "CellVerdict",
    "invariance_tasks",
    "render_verdicts",
    "run_invariance_cell",
    "sweep_invariance",
    "tightest",
]
