"""Deterministic multiprocess sweep harness.

:func:`parallel_map` is the primitive (contiguous chunking, ordered
merge, serial reference path at ``jobs <= 1``);
:mod:`~repro.parallel.sweeps` applies it to the genericity
classification grid.  The contract everywhere: ``jobs=N`` output is
byte-identical to ``jobs=1`` output.  See ``docs/EXECUTION.md``.
"""

from .runner import chunked, default_jobs, parallel_map
from .sweeps import (
    CellVerdict,
    ModeAgreementVerdict,
    invariance_tasks,
    mode_agreement_tasks,
    render_verdicts,
    run_invariance_cell,
    run_mode_agreement_cell,
    sweep_invariance,
    sweep_mode_agreement,
    tightest,
)

__all__ = [
    "chunked",
    "default_jobs",
    "parallel_map",
    "CellVerdict",
    "ModeAgreementVerdict",
    "invariance_tasks",
    "mode_agreement_tasks",
    "render_verdicts",
    "run_invariance_cell",
    "run_mode_agreement_cell",
    "sweep_invariance",
    "sweep_mode_agreement",
    "tightest",
]
