"""Deterministic multiprocess fan-out for embarrassingly parallel sweeps.

The repo's empirical checkers — invariance/genericity sweeps, the
experiment registry, differential fuzzing — are per-instance
independent: every cell derives its own rng from its identity (seed,
cell name, ...) and never touches shared state.  That makes them safe
to shard across processes, *provided the harness adds no
nondeterminism of its own*.  :func:`parallel_map` guarantees that:

* **deterministic sharding** — items are split into contiguous chunks
  in input order (no work stealing, no hash partitioning);
* **chunked submission** — one executor task per chunk, not per item,
  so pickling overhead amortizes over ``chunk_size`` items;
* **ordered merge** — results are reassembled in submission order, so
  the output list is exactly ``[worker(x) for x in items]`` regardless
  of which process finished first;
* **serial reference path** — ``jobs <= 1`` runs the plain list
  comprehension in-process.  Byte-identical output between the two
  paths is the harness's contract (and is asserted by the benchmarks);
* **crash resilience** — a worker process dying hard (segfault, OOM
  kill, ``os._exit``) breaks the whole :class:`~concurrent.futures.
  ProcessPoolExecutor`, not just its chunk.  The harness collects the
  chunks that finished before the crash, rebuilds the pool, and
  resubmits exactly the unfinished chunks (same contents, same chunk
  indexes — the re-shard is deterministic).  After
  ``max_chunk_retries`` crashes, a chunk runs serially in the *parent*
  process instead, so the merged output stays byte-identical to the
  serial path no matter how unreliable the workers are.  Ordinary
  worker *exceptions* are not retried — they propagate, exactly as the
  serial list comprehension would raise them.

Workers must be top-level (picklable-by-reference) functions, and both
items and results must pickle.  Objects that close over lambdas (e.g.
:class:`~repro.algebra.query.Query`) can't cross the process boundary;
ship *names* instead and reconstruct inside the worker — see
:mod:`repro.parallel.sweeps`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "chunked", "default_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def chunked(items: Sequence[T], chunk_size: int) -> Iterator[Sequence[T]]:
    """Contiguous, order-preserving chunks of ``items``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]


def _apply_chunk(
    payload: tuple[Callable[[T], R], Sequence[T], int, int, object],
) -> list[R]:
    """Worker-side: run one chunk through the worker, preserving order.

    ``fault`` (the ``chunk_fault`` hook, e.g. :class:`~repro.robustness.
    faults.WorkerCrash`) runs first, in the worker process, with the
    chunk's index and attempt number — it may kill the process.
    """
    worker, chunk, index, attempt, fault = payload
    if fault is not None:
        fault(index, attempt)
    return [worker(item) for item in chunk]


def _apply_chunk_traced(
    payload: tuple[Callable[[T], R], Sequence[T], int, int, object],
) -> tuple[list[R], dict]:
    """Like :func:`_apply_chunk`, but also ship the chunk's metrics.

    The snapshot *delta* (this chunk's contribution only) comes back,
    not the registry's absolute state — pool processes are reused
    across chunks, and absolutes would double-count earlier chunks.
    """
    from ..obs.metrics import REGISTRY, snapshot_delta

    worker, chunk, index, attempt, fault = payload
    if fault is not None:
        fault(index, attempt)
    before = REGISTRY.snapshot()
    results = [worker(item) for item in chunk]
    return results, snapshot_delta(REGISTRY.snapshot(), before)


def parallel_map(
    worker: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    merge_metrics: bool = False,
    max_chunk_retries: int = 2,
    chunk_fault=None,
) -> list[R]:
    """``[worker(x) for x in items]``, optionally sharded across processes.

    With ``jobs <= 1`` (or fewer than two items) this *is* the list
    comprehension — the serial reference path.  Otherwise items are
    split into contiguous chunks (default: ~4 chunks per worker, so a
    slow chunk can't straggle the whole run), each chunk is one
    :class:`~concurrent.futures.ProcessPoolExecutor` task, and results
    are merged back in chunk order.  ``worker`` must be a top-level
    function; items and results must pickle.

    ``merge_metrics=True`` additionally folds each worker chunk's
    :data:`repro.obs.metrics.REGISTRY` activity into the parent
    process's registry, merged in chunk order — counter and histogram
    totals come out identical to the serial run's (sums commute;
    gauges merge by ``max``).  On the serial path the worker already
    writes to the parent registry, so the flag is a no-op.

    A chunk whose worker process *dies* (``BrokenProcessPool``) is
    resubmitted to a fresh pool up to ``max_chunk_retries`` times, then
    falls back to running serially in the parent — the merged output is
    byte-identical to the serial path either way.  Retries and
    fallbacks bump the ``robustness.parallel.*`` metrics counters.
    ``chunk_fault`` (a picklable ``fault(chunk_index, attempt)``
    callable, e.g. :class:`~repro.robustness.faults.WorkerCrash`) runs
    in the worker before each chunk — the chaos hook that makes crash
    recovery testable.  The parent's serial fallback never invokes it.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [worker(item) for item in work]
    if chunk_size is None:
        chunk_size = max(1, -(-len(work) // (jobs * 4)))
    chunks = list(chunked(work, chunk_size))
    n = len(chunks)
    apply = _apply_chunk_traced if merge_metrics else _apply_chunk
    results: list = [None] * n
    deltas: list = [None] * n
    attempts = [0] * n
    pending = list(range(n))
    while pending:
        crashed: list[int] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures: list[tuple[int, object]] = []
            for i in pending:
                payload = (worker, chunks[i], i, attempts[i], chunk_fault)
                try:
                    futures.append((i, pool.submit(apply, payload)))
                except BrokenProcessPool:
                    # A worker died before this chunk even went out.
                    crashed.append(i)
            for i, future in futures:  # submission order == chunk order
                try:
                    out = future.result()
                except BrokenProcessPool:
                    # The pool is dead; chunks already collected above
                    # are safe, this one (and likely the rest) retry.
                    crashed.append(i)
                    continue
                if merge_metrics:
                    results[i], deltas[i] = out
                else:
                    results[i] = out
        if not crashed:
            break
        from ..obs.metrics import counter

        pending = []
        for i in sorted(crashed):
            attempts[i] += 1
            if attempts[i] <= max_chunk_retries:
                counter("robustness.parallel.chunk_retries")
                pending.append(i)
            else:
                # Bounded retries exhausted: compute the chunk serially
                # in the parent (no chunk_fault — the parent must
                # survive), so the merged output is still exactly the
                # serial path's.  Parent-side metrics write straight to
                # the live registry; no delta to merge.
                counter("robustness.parallel.serial_fallbacks")
                results[i] = [worker(item) for item in chunks[i]]
    if merge_metrics:
        from ..obs.metrics import REGISTRY

        for delta in deltas:  # chunk order — deterministic merge
            if delta is not None:
                REGISTRY.merge(delta)
    return [r for chunk_results in results for r in chunk_results]
