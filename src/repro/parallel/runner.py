"""Deterministic multiprocess fan-out for embarrassingly parallel sweeps.

The repo's empirical checkers — invariance/genericity sweeps, the
experiment registry, differential fuzzing — are per-instance
independent: every cell derives its own rng from its identity (seed,
cell name, ...) and never touches shared state.  That makes them safe
to shard across processes, *provided the harness adds no
nondeterminism of its own*.  :func:`parallel_map` guarantees that:

* **deterministic sharding** — items are split into contiguous chunks
  in input order (no work stealing, no hash partitioning);
* **chunked submission** — one executor task per chunk, not per item,
  so pickling overhead amortizes over ``chunk_size`` items;
* **ordered merge** — results are reassembled in submission order, so
  the output list is exactly ``[worker(x) for x in items]`` regardless
  of which process finished first;
* **serial reference path** — ``jobs <= 1`` runs the plain list
  comprehension in-process.  Byte-identical output between the two
  paths is the harness's contract (and is asserted by the benchmarks).

Workers must be top-level (picklable-by-reference) functions, and both
items and results must pickle.  Objects that close over lambdas (e.g.
:class:`~repro.algebra.query.Query`) can't cross the process boundary;
ship *names* instead and reconstruct inside the worker — see
:mod:`repro.parallel.sweeps`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "chunked", "default_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def chunked(items: Sequence[T], chunk_size: int) -> Iterator[Sequence[T]]:
    """Contiguous, order-preserving chunks of ``items``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]


def _apply_chunk(payload: tuple[Callable[[T], R], Sequence[T]]) -> list[R]:
    """Worker-side: run one chunk through the worker, preserving order."""
    worker, chunk = payload
    return [worker(item) for item in chunk]


def _apply_chunk_traced(
    payload: tuple[Callable[[T], R], Sequence[T]],
) -> tuple[list[R], dict]:
    """Like :func:`_apply_chunk`, but also ship the chunk's metrics.

    The snapshot *delta* (this chunk's contribution only) comes back,
    not the registry's absolute state — pool processes are reused
    across chunks, and absolutes would double-count earlier chunks.
    """
    from ..obs.metrics import REGISTRY, snapshot_delta

    worker, chunk = payload
    before = REGISTRY.snapshot()
    results = [worker(item) for item in chunk]
    return results, snapshot_delta(REGISTRY.snapshot(), before)


def parallel_map(
    worker: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    merge_metrics: bool = False,
) -> list[R]:
    """``[worker(x) for x in items]``, optionally sharded across processes.

    With ``jobs <= 1`` (or fewer than two items) this *is* the list
    comprehension — the serial reference path.  Otherwise items are
    split into contiguous chunks (default: ~4 chunks per worker, so a
    slow chunk can't straggle the whole run), each chunk is one
    :class:`~concurrent.futures.ProcessPoolExecutor` task, and results
    are merged back in submission order.  ``worker`` must be a
    top-level function; items and results must pickle.

    ``merge_metrics=True`` additionally folds each worker chunk's
    :data:`repro.obs.metrics.REGISTRY` activity into the parent
    process's registry, merged in submission order — counter and
    histogram totals come out identical to the serial run's (sums
    commute; gauges merge by ``max``).  On the serial path the worker
    already writes to the parent registry, so the flag is a no-op.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [worker(item) for item in work]
    if chunk_size is None:
        chunk_size = max(1, -(-len(work) // (jobs * 4)))
    chunks = list(chunked(work, chunk_size))
    merged: list[R] = []
    apply = _apply_chunk_traced if merge_metrics else _apply_chunk
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures = [
            pool.submit(apply, (worker, chunk)) for chunk in chunks
        ]
        if merge_metrics:
            from ..obs.metrics import REGISTRY

            for future in futures:  # submission order == input order
                results, delta = future.result()
                merged.extend(results)
                REGISTRY.merge(delta)
        else:
            for future in futures:
                merged.extend(future.result())
    return merged
