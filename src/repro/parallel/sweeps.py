"""Parallel invariance/genericity sweeps over the operation catalog.

A classification sweep is a grid: (operation, lattice spec, extension
mode) cells, each an independent randomized counterexample search
(:func:`repro.genericity.witnesses.find_counterexample` constructs its
own ``random.Random(seed)`` per cell).  This module shards that grid
with :func:`repro.parallel.parallel_map`.

:class:`~repro.algebra.query.Query` objects close over lambdas and do
not pickle, so tasks carry *names*: the worker reconstructs the query
from :data:`repro.cli.OPERATION_CATALOG` and the spec from
:data:`repro.genericity.hierarchy.STANDARD_LATTICE` by name.  Cell
order matches :func:`repro.genericity.classify.classify` (``for spec in
lattice: for mode in (REL, STRONG)``), and the shared ``fn_cache`` the
serial path uses is a pure memo (it never changes verdicts or
``pairs_checked``), so :func:`render_verdicts` output is byte-identical
between ``jobs=1`` and any ``jobs=N``.

To reproduce one parallel cell serially, rerun the same sweep with
``jobs=1`` — cells never share rng state, so the failing cell replays
identically — or call :func:`run_invariance_cell` directly with the
cell's task tuple.

:func:`sweep_mode_agreement` applies the same harness to the executor
contract: each cell rebuilds a random plan/database pair from
:func:`~repro.engine.workload.derive_rng` scalars and checks one
executor mode (``stream``/``batch``/``compiled``) against the
reference interpreter on value, work, and per-node ledger — the
differential-fuzz invariant, sharded across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .runner import parallel_map

__all__ = [
    "CellVerdict",
    "SweepTask",
    "run_invariance_cell",
    "invariance_tasks",
    "sweep_invariance",
    "tightest",
    "render_verdicts",
    "ModeAgreementTask",
    "ModeAgreementVerdict",
    "run_mode_agreement_cell",
    "mode_agreement_tasks",
    "sweep_mode_agreement",
]

#: ``(operation, spec_name, mode, trials, seed)`` — everything a worker
#: needs to rebuild and run one grid cell, all picklable scalars.
SweepTask = tuple[str, str, str, int, int]


@dataclass(frozen=True)
class CellVerdict:
    """Picklable outcome of one (operation, spec, mode) cell.

    Mirrors :class:`repro.genericity.classify.Verdict` (``label()``
    renders the same text) but carries names instead of live spec
    objects so it can cross the process boundary.
    """

    operation: str
    spec_name: str
    mode: str
    generic: bool
    pairs_checked: int
    witness_verified: bool = False

    def label(self) -> str:
        if self.generic:
            return f"generic ({self.pairs_checked} checks)"
        mark = "verified" if self.witness_verified else "UNVERIFIED"
        return f"NOT generic (witness {mark})"


def _spec_by_name(name: str):
    from ..genericity.hierarchy import STANDARD_LATTICE

    for spec in STANDARD_LATTICE:
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in STANDARD_LATTICE)
    raise KeyError(f"unknown lattice spec {name!r}; choose from: {known}")


def run_invariance_cell(task: SweepTask) -> CellVerdict:
    """Run one grid cell; top-level so it pickles to worker processes.

    Imports are deferred so spawned workers pay them once, and so this
    module stays importable without dragging the whole checker stack in.
    """
    operation, spec_name, mode, trials, seed = task
    from ..cli import OPERATION_CATALOG
    from ..genericity.invariance import instantiate_at
    from ..genericity.witnesses import find_counterexample, verify_witness
    from ..types.ast import INT

    query = OPERATION_CATALOG[operation]()
    spec = _spec_by_name(spec_name)
    in_type = instantiate_at(query.input_type, INT)
    out_type = instantiate_at(query.output_type, INT)
    result = find_counterexample(
        query,
        spec,
        mode,
        trials=trials,
        seed=seed,
        input_type=in_type,
        output_type=out_type,
    )
    if result.found:
        verified = verify_witness(query, result.witness, in_type, out_type)
        return CellVerdict(
            operation, spec_name, mode, False, result.pairs_checked, verified
        )
    return CellVerdict(operation, spec_name, mode, True, result.pairs_checked)


def invariance_tasks(
    operations: Sequence[str], *, trials: int = 40, seed: int = 0
) -> list[SweepTask]:
    """The full sweep grid, in :func:`classify`'s cell order."""
    from ..genericity.hierarchy import STANDARD_LATTICE
    from ..mappings.extensions import REL, STRONG

    tasks: list[SweepTask] = []
    for operation in operations:
        for spec in STANDARD_LATTICE:
            for mode in (REL, STRONG):
                tasks.append((operation, spec.name, mode, trials, seed))
    return tasks


def sweep_invariance(
    operations: Sequence[str],
    *,
    trials: int = 40,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> list[CellVerdict]:
    """Classify every named operation over the standard lattice grid."""
    tasks = invariance_tasks(operations, trials=trials, seed=seed)
    return parallel_map(
        run_invariance_cell, tasks, jobs=jobs, chunk_size=chunk_size
    )


#: ``(base_seed, index, mode)`` — scalars from which a worker replays
#: one executor-agreement cell (the rng path is
#: ``derive_rng(base_seed, index, "mode-agreement")``).
ModeAgreementTask = tuple[int, int, str]

#: Executor modes the agreement sweep checks against the reference.
AGREEMENT_MODES = ("stream", "batch", "compiled")


@dataclass(frozen=True)
class ModeAgreementVerdict:
    """Picklable outcome of one (seed index, executor mode) cell.

    ``agree`` asserts the full contract — identical value, total work,
    and per-node ledger as the reference — and ``rows``/``work`` carry
    the reference measurements so a report can aggregate coverage."""

    index: int
    mode: str
    agree: bool
    rows: int
    work: int


def run_mode_agreement_cell(task: ModeAgreementTask) -> ModeAgreementVerdict:
    """Run one agreement cell; top-level so it pickles to workers.

    The plan and database are rebuilt inside the worker (plans close
    over lambdas and do not pickle), from an rng stream keyed by the
    task scalars alone — serial and sharded runs replay byte-identical
    cells."""
    base_seed, index, mode = task
    from ..engine.exec import execute_compiled, execute_streaming
    from ..engine.workload import derive_rng, random_database, random_plan
    from ..optimizer.plan import execute_reference

    names = ("r", "s", "t")
    rng = derive_rng(base_seed, index, "mode-agreement")
    db = random_database(
        rng, names, arity=2, domain_size=5, max_rows=rng.randint(0, 12)
    )
    plan = random_plan(rng, names, depth=rng.randint(1, 4))
    reference = execute_reference(plan, db)
    if mode == "compiled":
        result = execute_compiled(plan, db)
    else:
        result = execute_streaming(plan, db, mode=mode)
    agree = (
        result.value == reference.value
        and result.work == reference.work
        and result.per_node == reference.per_node
    )
    return ModeAgreementVerdict(
        index, mode, agree, len(reference.value), reference.work
    )


def mode_agreement_tasks(
    seeds: int,
    *,
    base_seed: int = 0,
    modes: Sequence[str] = AGREEMENT_MODES,
) -> list[ModeAgreementTask]:
    """The agreement grid: every seed index × every executor mode."""
    return [
        (base_seed, index, mode)
        for index in range(seeds)
        for mode in modes
    ]


def sweep_mode_agreement(
    seeds: int,
    *,
    base_seed: int = 0,
    modes: Sequence[str] = AGREEMENT_MODES,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> list[ModeAgreementVerdict]:
    """Check every executor mode against the reference over ``seeds``
    random plan/database cells, optionally sharded across processes.
    Verdict order is the task-grid order regardless of ``jobs``."""
    tasks = mode_agreement_tasks(seeds, base_seed=base_seed, modes=modes)
    return parallel_map(
        run_mode_agreement_cell, tasks, jobs=jobs, chunk_size=chunk_size
    )


def tightest(
    verdicts: Sequence[CellVerdict], operation: str, mode: str
) -> Optional[str]:
    """Largest generic class name for one operation/mode (lattice order)."""
    for verdict in verdicts:
        if (
            verdict.operation == operation
            and verdict.mode == mode
            and verdict.generic
        ):
            return verdict.spec_name
    return None


def render_verdicts(verdicts: Sequence[CellVerdict]) -> str:
    """Render a sweep in the CLI ``classify`` format (stable text, used
    for the serial-vs-parallel byte-identity checks)."""
    from ..cli import OPERATION_CATALOG
    from ..mappings.extensions import REL, STRONG

    operations: list[str] = []
    for verdict in verdicts:
        if verdict.operation not in operations:
            operations.append(verdict.operation)
    lines: list[str] = []
    for operation in operations:
        query = OPERATION_CATALOG[operation]()
        lines.append(
            f"classification of {query.name} : "
            f"{query.input_type} -> {query.output_type}"
        )
        for verdict in verdicts:
            if verdict.operation != operation:
                continue
            lines.append(
                f"  {verdict.spec_name:18} {verdict.mode:6} {verdict.label()}"
            )
        for mode in (REL, STRONG):
            name = tightest(verdicts, operation, mode)
            lines.append(
                f"  tightest {mode} class: "
                f"{name if name else '(none in lattice)'}"
            )
    return "\n".join(lines)
