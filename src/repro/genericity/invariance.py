"""Invariance of queries under extended mappings (Definition 2.9).

A function ``Q`` is *invariant* under ``H^x`` if for any two legal
inputs ``R1, R2`` with ``H^x(R1, R2)``, also ``H^x(Q(R1), Q(R2))``.

The machinery here is constructive: given a base mapping family and an
input value, we *build* a partner value related to it (for the ``rel``
mode by sampling images level by level; for the ``strong`` mode by
repairing the input into a closed value whose strong image is uniquely
determined, per Prop 2.8(ii)), then check that the query outputs are
related.  Every generated pair is re-validated with ``holds`` before
use, so a reported violation is always a genuine counterexample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..mappings.extensions import (
    STRONG,
    BagRelExt,
    BagStrongExt,
    ExtensionMode,
    ListRel,
    ProductRel,
    SetRelExt,
    SetStrongExt,
)
from ..mappings.families import MappingFamily
from ..mappings.mapping import Rel
from ..types.ast import BaseType, Type, free_type_vars, substitute
from ..types.values import CVBag, CVList, CVSet, Tup, Value
from ..algebra.query import Query

__all__ = [
    "sample_image",
    "strong_repair",
    "related_pair",
    "Witness",
    "InvarianceReport",
    "check_invariance",
    "instantiate_at",
]


def sample_image(rel: Rel, x: Value, rng: random.Random) -> Optional[Value]:
    """Sample some ``y`` with ``rel.holds(x, y)`` for the *rel* mode.

    Returns ``None`` when ``x`` has no image (mappings need not be
    total).  For set nodes, every valid image is a union of nonempty
    subsets of the element images (Def 2.5(1)), so we sample such a
    union directly instead of enumerating.
    """
    if isinstance(rel, ProductRel):
        if not isinstance(x, Tup) or len(x) != len(rel.components):
            return None
        parts = []
        for component, xi in zip(rel.components, x):
            yi = sample_image(component, xi, rng)
            if yi is None:
                return None
            parts.append(yi)
        return Tup(parts)
    if isinstance(rel, ListRel):
        if not isinstance(x, CVList):
            return None
        parts = []
        for xi in x:
            yi = sample_image(rel.inner, xi, rng)
            if yi is None:
                return None
            parts.append(yi)
        return CVList(parts)
    if isinstance(rel, SetRelExt):
        if not isinstance(x, CVSet):
            return None
        out: set = set()
        for xi in x:
            images = []
            # Sample up to three candidate images per element; taking a
            # nonempty subset keeps the two-way cover condition true.
            for _ in range(3):
                yi = sample_image(rel.inner, xi, rng)
                if yi is not None:
                    images.append(yi)
            if not images:
                return None
            count = rng.randint(1, len(images))
            out.update(rng.sample(images, count))
        return CVSet(out)
    if isinstance(rel, SetStrongExt):
        for y in rel.images(x):
            return y
        return None
    if isinstance(rel, BagStrongExt):
        # Strong bag mode preserves total mass: map occurrences 1-1.
        if not isinstance(x, CVBag):
            return None
        items = []
        for xi in x:
            yi = sample_image(rel.inner, xi, rng)
            if yi is None:
                return None
            items.append(yi)
        candidate = CVBag(items)
        return candidate if rel.holds(x, candidate) else None
    if isinstance(rel, BagRelExt):
        # The rel bag extension is support-based, so partners may have
        # arbitrary multiplicities; sample them rather than copying the
        # input's, or multiplicity-sensitive queries look spuriously
        # invariant.
        if not isinstance(x, CVBag):
            return None
        items = []
        for xi in x.support():
            yi = sample_image(rel.inner, xi, rng)
            if yi is None:
                return None
            items.extend([yi] * rng.randint(1, 2))
        return CVBag(items)
    # Base relations (Mapping, IdentityRel, ...) enumerate images.
    images = list(rel.images(x))
    if not images:
        return None
    return rng.choice(images)


def strong_repair(rel: Rel, x: Value) -> Optional[Value]:
    """Repair ``x`` into a value admitting a *strong* image.

    Strong extensions are injective on set types (Prop 2.8(ii)): a set
    either has exactly one image (when it is "closed" — maximal w.r.t.
    its own image) or none.  This routine closes ``x`` from the inside
    out: unmappable elements are dropped, then the set is saturated by
    alternating maximal-image / maximal-preimage steps until it is a
    fixpoint.  Returns ``None`` when no nonempty repair exists.
    """
    if isinstance(rel, SetStrongExt):
        repaired = []
        for item in x:
            fixed = strong_repair(rel.inner, item)
            if fixed is not None:
                repaired.append(fixed)
        current = CVSet(repaired)
        for _ in range(64):
            image = rel._maximal_right(current, None)
            closure = rel._maximal_left(image, None)
            if closure == current:
                break
            current = closure
        if next(rel.images(current), None) is None:
            return None
        return current
    if isinstance(rel, ProductRel):
        if not isinstance(x, Tup) or len(x) != len(rel.components):
            return None
        parts = []
        for component, xi in zip(rel.components, x):
            fixed = strong_repair(component, xi)
            if fixed is None:
                return None
            parts.append(fixed)
        return Tup(parts)
    if isinstance(rel, ListRel):
        if not isinstance(x, CVList):
            return None
        parts = []
        for xi in x:
            fixed = strong_repair(rel.inner, xi)
            if fixed is None:
                return None
            parts.append(fixed)
        return CVList(parts)
    if isinstance(rel, (BagRelExt, BagStrongExt)):
        return x if isinstance(x, CVBag) else None
    # Base level: any element with at least one image survives as is.
    if next(rel.images(x), None) is None:
        return None
    return x


def related_pair(
    rel: Rel,
    x: Value,
    mode: ExtensionMode,
    rng: random.Random,
) -> Optional[tuple[Value, Value]]:
    """Produce a pair ``(x', y)`` with ``rel`` holding in mode ``mode``.

    ``x'`` is ``x`` possibly repaired (strong mode) or restricted to the
    mapped part of the domain.  The returned pair is validated before
    being handed out; ``None`` means no partner could be constructed.
    """
    if mode == STRONG:
        repaired = strong_repair(rel, x)
        if repaired is None:
            return None
        y = sample_image(rel, repaired, rng)
        if y is None:
            return None
        holds = rel.holds(repaired, y)
        return (repaired, y) if holds else None
    y = sample_image(rel, x, rng)
    if y is None:
        return None
    return (x, y) if rel.holds(x, y) else None


@dataclass
class Witness:
    """A concrete invariance violation: related inputs whose outputs
    fail to be related."""

    input_pair: tuple[Value, Value]
    output_pair: tuple[Value, Value]
    family: MappingFamily
    mode: ExtensionMode

    def __repr__(self) -> str:
        return (
            f"Witness(mode={self.mode}, inputs={self.input_pair!r}, "
            f"outputs={self.output_pair!r})"
        )


@dataclass
class InvarianceReport:
    """Outcome of an invariance check across many generated pairs."""

    query_name: str
    mode: ExtensionMode
    pairs_checked: int = 0
    pairs_skipped: int = 0
    witness: Optional[Witness] = None

    @property
    def invariant(self) -> bool:
        """True iff no violation was found (statistical, not a proof)."""
        return self.witness is None

    def __repr__(self) -> str:
        status = "ok" if self.invariant else "VIOLATED"
        return (
            f"InvarianceReport({self.query_name}, {self.mode}: {status}, "
            f"checked={self.pairs_checked}, skipped={self.pairs_skipped})"
        )


def instantiate_at(t: Type, base: BaseType) -> Type:
    """Instantiate every type variable of ``t`` at the base type ``base``.

    Turns a polymorphic query type into the concrete instance type the
    genericity check runs at."""
    assignment = {name: base for name in free_type_vars(t)}
    return substitute(t, assignment)


def check_invariance(
    query: Query,
    family: MappingFamily,
    mode: ExtensionMode,
    inputs: Sequence[Value],
    input_type: Optional[Type] = None,
    output_type: Optional[Type] = None,
    base: Optional[BaseType] = None,
    rng: Optional[random.Random] = None,
    fn_cache: Optional[dict] = None,
) -> InvarianceReport:
    """Check Definition 2.9 empirically on the supplied inputs.

    For each input a related partner is constructed under ``family``
    extended at the query's (instantiated) input type; the outputs are
    then compared under the extension at the output type.  Inputs for
    which no partner exists are *skipped*, mirroring the paper's "for
    any two legal inputs ... if H^x(R1, R2) holds".

    ``fn_cache`` (a plain dict, shared by the caller across many
    checks) memoizes ``query.fn`` per input value — the classification
    sweep re-applies the same query to the same instances across every
    lattice cell, and queries are pure, so recomputation is pure waste.
    """
    rng = rng or random.Random(0)
    if base is None:
        base = next(
            (BaseType(name) for name in family.mappings), BaseType("int")
        )
    in_type = input_type or instantiate_at(query.input_type, base)
    out_type = output_type or instantiate_at(query.output_type, base)
    in_rel = family.extend(in_type, mode)
    out_rel = family.extend(out_type, mode)

    def apply_query(v: Value) -> Value:
        if fn_cache is None:
            return query.fn(v)
        key = (query.name, v)
        try:
            return fn_cache[key]
        except KeyError:
            out = query.fn(v)
            fn_cache[key] = out
            return out

    report = InvarianceReport(query_name=query.name, mode=mode)
    for value in inputs:
        pair = related_pair(in_rel, value, mode, rng)
        if pair is None:
            report.pairs_skipped += 1
            continue
        r1, r2 = pair
        out1, out2 = apply_query(r1), apply_query(r2)
        report.pairs_checked += 1
        if not out_rel.holds(out1, out2):
            report.witness = Witness(
                input_pair=(r1, r2),
                output_pair=(out1, out2),
                family=family,
                mode=mode,
            )
            return report
    return report
