"""Counterexample search for negative genericity claims.

Several of the paper's results are *negative*: a query is **not**
generic w.r.t. some class (Lemma 2.12, Prop 3.4, Prop 3.5, the Q4/Q5
examples).  Such claims are established exactly by exhibiting a witness.
:func:`find_counterexample` searches randomized families and inputs of
growing size; the experiments assert that the search succeeds for the
paper's negative claims and fails (within budget) for the positive ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..algebra.query import Query
from ..mappings.extensions import ExtensionMode, REL
from ..types.ast import INT, BaseType, Type
from ..types.values import Value
from ..mappings.generators import random_value
from .hierarchy import GenericitySpec
from .invariance import Witness, check_invariance, instantiate_at

__all__ = ["SearchResult", "find_counterexample", "verify_witness"]


@dataclass
class SearchResult:
    """Outcome of a counterexample search."""

    query_name: str
    spec: GenericitySpec
    mode: ExtensionMode
    witness: Optional[Witness]
    trials: int
    pairs_checked: int

    @property
    def found(self) -> bool:
        return self.witness is not None

    def __repr__(self) -> str:
        status = "found" if self.found else "none"
        return (
            f"SearchResult({self.query_name} vs {self.spec.name}/{self.mode}:"
            f" {status} after {self.trials} trials)"
        )


def find_counterexample(
    query: Query,
    spec: GenericitySpec,
    mode: ExtensionMode = REL,
    base: BaseType = INT,
    trials: int = 200,
    inputs_per_trial: int = 4,
    domain_size: int = 4,
    seed: int = 0,
    signature=None,
    input_type: Optional[Type] = None,
    output_type: Optional[Type] = None,
    fixed_inputs: Optional[Sequence[Value]] = None,
    fn_cache: Optional[dict] = None,
) -> SearchResult:
    """Search for an invariance violation of ``query`` against ``spec``.

    Each trial draws a fresh family from the spec's mapping class and a
    handful of random inputs of the query's (instantiated) input type,
    then runs :func:`~repro.genericity.invariance.check_invariance`.
    """
    rng = random.Random(seed)
    in_type = input_type or instantiate_at(query.input_type, base)
    out_type = output_type or instantiate_at(query.output_type, base)
    pairs_checked = 0
    for trial in range(trials):
        family = spec.generate_family(
            rng,
            base_types=(base,),
            domain_size=domain_size,
            signature=signature,
        )
        domain = list(family[base.name].source_domain)
        if fixed_inputs is not None:
            inputs = list(fixed_inputs)
        else:
            inputs = [
                random_value(rng, in_type, {base.name: domain})
                for _ in range(inputs_per_trial)
            ]
        report = check_invariance(
            query,
            family,
            mode,
            inputs,
            input_type=in_type,
            output_type=out_type,
            base=base,
            rng=rng,
            fn_cache=fn_cache,
        )
        pairs_checked += report.pairs_checked
        if report.witness is not None:
            return SearchResult(
                query.name, spec, mode, report.witness, trial + 1, pairs_checked
            )
    return SearchResult(query.name, spec, mode, None, trials, pairs_checked)


def verify_witness(
    query: Query,
    witness: Witness,
    input_type: Type,
    output_type: Type,
) -> bool:
    """Independently re-validate a witness: inputs related, outputs not.

    Guards the experiments against bugs in the generation path — a
    claimed counterexample must survive a from-scratch check.
    """
    in_rel = witness.family.extend(input_type, witness.mode)
    out_rel = witness.family.extend(output_type, witness.mode)
    r1, r2 = witness.input_pair
    if not in_rel.holds(r1, r2):
        return False
    return not out_rel.holds(query.fn(r1), query.fn(r2))
