"""Static genericity analysis of query plans.

The paper closes hoping that "type checking and type inference
algorithms can be used to verify or discover such properties
automatically" (Section 5).  This module is that idea for the plan
algebra: instead of *testing* a composed query's genericity, it
*derives* a sound upper bound from the closure theorems —

* Prop 3.1: composition, x, U, map preserve full genericity;
* Prop 3.6: U, &, Pi, x, -, sigma-hat preserve strong genericity;
* equality-using operators cap the rel side at the injective class;
* operators mentioning constants or opaque predicates cap both sides
  (soundly) at the injective class unless declared otherwise.

The derived profile is a *guarantee*: the dynamic classifier can only
ever find the query in the same or a larger class (experiment E-STATIC
checks exactly this containment).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)

__all__ = ["ClassBound", "Profile", "analyze_plan", "PROFILE_TABLE"]


class ClassBound(IntEnum):
    """Lower bounds in the mapping-class lattice, ordered by strength.

    ``ALL``: generic w.r.t. all mappings (the strongest guarantee).
    ``INJECTIVE``: guaranteed from the (total) injective class down —
    pure-equality operators land here.
    ``NONE``: no class guarantee derived — operators with opaque
    predicates, interpreted functions or constants are only generic
    w.r.t. mappings preserving those symbols (Sections 2.4-2.5), which
    this conservative analysis does not track."""

    NONE = 0
    INJECTIVE = 1
    ALL = 2

    def meet(self, other: "ClassBound") -> "ClassBound":
        return ClassBound(min(self, other))

    def label(self) -> str:
        return {2: "all", 1: "injective", 0: "none"}[int(self)]


@dataclass(frozen=True)
class Profile:
    """A (rel, strong) pair of guaranteed genericity bounds."""

    rel: ClassBound
    strong: ClassBound

    def meet(self, other: "Profile") -> "Profile":
        return Profile(self.rel.meet(other.rel), self.strong.meet(other.strong))

    def __str__(self) -> str:
        return f"rel>={self.rel.label()}, strong>={self.strong.label()}"


#: Per-operator profiles from the paper's results.
FULLY_GENERIC = Profile(ClassBound.ALL, ClassBound.ALL)
#: Equality used but eliminated from the output (sigma-hat style; -, &):
#: strong-full, rel only from injective down.
STRONG_SIDE = Profile(ClassBound.INJECTIVE, ClassBound.ALL)
#: Pure equality *shown* in the output (equi-join keeps both columns):
#: injective on both sides.
EQUALITY_SHOWN = Profile(ClassBound.INJECTIVE, ClassBound.INJECTIVE)
#: Opaque predicates / functions / constants: no class guarantee.
NO_GUARANTEE = Profile(ClassBound.NONE, ClassBound.NONE)

PROFILE_TABLE: dict[type, Profile] = {
    Scan: FULLY_GENERIC,
    Project: FULLY_GENERIC,          # Prop 3.1
    Union: FULLY_GENERIC,            # Prop 3.1
    Product: FULLY_GENERIC,          # Prop 3.1
    Difference: STRONG_SIDE,         # Props 3.4/3.6
    Intersect: STRONG_SIDE,          # Props 3.4/3.6
    Join: EQUALITY_SHOWN,            # keeps both joined columns
    Select: NO_GUARANTEE,            # opaque predicate: assume nothing
    MapNode: NO_GUARANTEE,           # opaque function: assume nothing
}


def analyze_plan(plan: Plan) -> Profile:
    """Derive the guaranteed genericity profile of a composed plan.

    The profile of a node is its operator profile met with its
    children's — closure under composition (Prop 3.1 for the fully
    generic side, Prop 3.6 for the strong side)."""
    profile = PROFILE_TABLE.get(type(plan))
    if profile is None:
        raise TypeError(f"no genericity profile for {type(plan).__name__}")
    for child in plan.children():
        profile = profile.meet(analyze_plan(child))
    return profile
