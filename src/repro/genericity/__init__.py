"""Genericity: invariance under mapping classes (paper Sections 2-3)."""

from .catalog import PAPER_TABLE, CatalogEntry, expected_cell
from .static_analysis import ClassBound, Profile, analyze_plan
from .exhaustive import ExhaustiveReport, all_values_of, exhaustive_check
from .classify import ClassificationRow, Verdict, classification_table, classify
from .hierarchy import (
    STANDARD_LATTICE,
    GenericitySpec,
    constrain_to_unary_predicate,
    force_preserve_constant,
    spec_leq,
)
from .invariance import (
    InvarianceReport,
    Witness,
    check_invariance,
    instantiate_at,
    related_pair,
    sample_image,
    strong_repair,
)
from .witnesses import SearchResult, find_counterexample, verify_witness

__all__ = [name for name in dir() if not name.startswith("_")]
