"""Exhaustive small-domain verification — the exact tier.

Randomized search gives statistical evidence; for small enough domains
we can do better and *decide* genericity outright: enumerate every
mapping between the domains, every input value of the instance type,
every related partner, and check invariance on all of them.  On a 2x2
or 3x2 domain this is a complete case analysis — a finite proof of the
claim at that size.

Used by the test suite to verify e.g. that projection is invariant
under *all 511* mappings between {0,1,2} and {10,11,12} restricted to
nonempty graphs, and that selection's counterexample set is exactly the
non-injective region.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..algebra.query import Query
from ..mappings.extensions import ExtensionMode
from ..mappings.families import MappingFamily
from ..mappings.generators import all_mappings_between
from ..mappings.mapping import Mapping
from ..types.ast import (
    BagType,
    BaseType,
    INT,
    ListType,
    Product,
    SetType,
    Type,
    TypeError_,
)
from ..types.values import CVBag, CVList, CVSet, Tup, Value
from .invariance import instantiate_at

__all__ = ["ExhaustiveReport", "all_values_of", "exhaustive_check"]


def all_values_of(
    t: Type,
    domains: dict[str, Sequence[Value]],
    max_collection: int = 2,
) -> Iterator[Value]:
    """Enumerate every value of type ``t`` over finite base domains,
    with collections capped at ``max_collection`` elements."""
    if isinstance(t, BaseType):
        if t.name == "bool" and t.name not in domains:
            yield from (True, False)
            return
        carrier = domains.get(t.name)
        if carrier is None:
            raise TypeError_(f"no domain for base type {t.name}")
        yield from carrier
        return
    if isinstance(t, Product):
        component_values = [
            list(all_values_of(c, domains, max_collection))
            for c in t.components
        ]
        for combo in itertools.product(*component_values):
            yield Tup(combo)
        return
    if isinstance(t, SetType):
        elements = list(all_values_of(t.element, domains, max_collection))
        for size in range(min(max_collection, len(elements)) + 1):
            for combo in itertools.combinations(elements, size):
                yield CVSet(combo)
        return
    if isinstance(t, BagType):
        elements = list(all_values_of(t.element, domains, max_collection))
        for size in range(max_collection + 1):
            for combo in itertools.combinations_with_replacement(
                elements, size
            ):
                yield CVBag(combo)
        return
    if isinstance(t, ListType):
        elements = list(all_values_of(t.element, domains, max_collection))
        for size in range(max_collection + 1):
            for combo in itertools.product(elements, repeat=size):
                yield CVList(combo)
        return
    raise TypeError_(f"cannot enumerate values of type {t}")


@dataclass
class ExhaustiveReport:
    """Outcome of a complete case analysis at one domain size."""

    query_name: str
    mode: ExtensionMode
    mappings_checked: int = 0
    pairs_checked: int = 0
    violations: list[tuple[Mapping, Value, Value]] = field(
        default_factory=list
    )

    @property
    def generic(self) -> bool:
        """Exact verdict at this domain size."""
        return not self.violations

    def __repr__(self) -> str:
        status = "generic" if self.generic else (
            f"{len(self.violations)} violations"
        )
        return (
            f"ExhaustiveReport({self.query_name}/{self.mode}: {status}, "
            f"{self.mappings_checked} mappings, "
            f"{self.pairs_checked} related pairs)"
        )


def exhaustive_check(
    query: Query,
    mode: ExtensionMode,
    left_size: int = 2,
    right_size: int = 2,
    base: BaseType = INT,
    max_collection: int = 2,
    mapping_filter=None,
    max_violations: int = 5,
) -> ExhaustiveReport:
    """Decide invariance of ``query`` over *every* mapping between
    domains of the given sizes and *every* related input pair.

    ``mapping_filter`` optionally restricts the mapping class (e.g.
    ``Mapping.is_injective``).  Collect at most ``max_violations``
    witnesses before stopping.
    """
    left = list(range(left_size))
    right = list(range(10, 10 + right_size))
    in_type = instantiate_at(query.input_type, base)
    out_type = instantiate_at(query.output_type, base)

    report = ExhaustiveReport(query.name, mode)
    inputs = list(all_values_of(in_type, {base.name: left}, max_collection))
    partners = list(all_values_of(in_type, {base.name: right}, max_collection))

    for mapping in all_mappings_between(left, right, base):
        if mapping_filter is not None and not mapping_filter(mapping):
            continue
        family = MappingFamily({base.name: mapping})
        in_rel = family.extend(in_type, mode)
        out_rel = family.extend(out_type, mode)
        report.mappings_checked += 1
        for value in inputs:
            for partner in partners:
                if not in_rel.holds(value, partner):
                    continue
                report.pairs_checked += 1
                if not out_rel.holds(query.fn(value), query.fn(partner)):
                    report.violations.append((mapping, value, partner))
                    if len(report.violations) >= max_violations:
                        return report
    return report
