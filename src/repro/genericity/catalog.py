"""The curated operation catalog with the paper's expected profiles.

Section 3 classifies the relational operations by genericity in prose;
this module writes that classification down as data — operation by
operation, the *expected* verdict in each (mapping class, extension
mode) cell — so experiment E-TABLE1 can check the whole table
mechanically.  The expectations are exactly the paper's:

* Cor 3.2's sublanguage (projection, cross, union, Id, empty) is fully
  generic in both modes;
* plain equality selection and the composition query are generic only
  w.r.t. injective mappings in rel mode; in strong mode the composition
  query (expressible with sigma-hat, Prop 3.6) is fully generic while
  plain selection is not;
* difference and intersection are strong-fully generic (Prop 3.6) but
  rel-generic only w.r.t. injective mappings (Prop 3.4);
* ``eq_adom`` is rel-fully generic but not strong-fully generic
  (Prop 3.5);
* ``even`` is generic exactly from the (total) injective class down —
  those are the mappings that preserve cardinality (Lemma 2.12 rules
  out everything weaker).

Running the classifier over the nested operations also *derives* two
profiles the abstract leaves to the full paper: ``powerset`` and
``singleton`` are rel-fully generic but strong-generic only w.r.t.
injective mappings (a non-injective mapping collapses elements, so a
subset/singleton of the source need not be maximal w.r.t. its image),
while ``flatten`` and ``unnest`` stay fully generic in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..algebra.derived_ops import antijoin, division, semijoin
from ..algebra.nested import flatten, powerset, singleton, unnest
from ..algebra.operators import (
    cross_op,
    difference_op,
    eq_adom,
    even_query,
    hat_select_eq,
    identity_query,
    intersection_op,
    projection,
    select_eq,
    self_compose,
    self_cross,
    union_op,
)
from ..algebra.query import Query
from ..mappings.extensions import REL, STRONG, ExtensionMode

__all__ = ["CatalogEntry", "PAPER_TABLE", "expected_cell"]

#: Cell key: (mapping class name, extension mode) -> expected generic?
Expectation = dict[tuple[str, ExtensionMode], bool]


def _uniform(generic: bool) -> Expectation:
    return {
        (cls, mode): generic
        for cls in ("all", "total_surjective", "functional", "injective",
                    "bijective")
        for mode in (REL, STRONG)
    }


def _fully_generic() -> Expectation:
    return _uniform(True)


def _injective_only() -> Expectation:
    expectation = _uniform(False)
    for mode in (REL, STRONG):
        expectation[("injective", mode)] = True
        expectation[("bijective", mode)] = True
    return expectation


def _strong_full_rel_injective() -> Expectation:
    """Strong-fully generic; rel only from injective down (Props 3.4/3.6)."""
    expectation = _injective_only()
    for cls in ("all", "total_surjective", "functional"):
        expectation[(cls, STRONG)] = True
    return expectation


def _rel_full_strong_injective() -> Expectation:
    """Rel-fully generic; strong only from injective down (Prop 3.5)."""
    expectation = _injective_only()
    for cls in ("all", "total_surjective", "functional"):
        expectation[(cls, REL)] = True
    return expectation


@dataclass
class CatalogEntry:
    """One row of the paper's (implicit) classification table."""

    name: str
    factory: Callable[[], Query]
    expectation: Expectation
    paper_source: str
    notes: str = ""


PAPER_TABLE: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        "projection", lambda: projection((0,), 2), _fully_generic(),
        "Prop 3.1",
    ),
    CatalogEntry("cross", self_cross, _fully_generic(), "Prop 3.1"),
    CatalogEntry("union", union_op, _fully_generic(), "Prop 3.1"),
    CatalogEntry("identity", identity_query, _fully_generic(), "Prop 3.1"),
    CatalogEntry(
        "binary-cross", cross_op, _fully_generic(), "Cor 3.2",
    ),
    CatalogEntry(
        "sigma-eq", lambda: select_eq(0, 1, 2), _injective_only(),
        "Sections 2.3/3.2",
        notes="shows equality in its output: not strong-generic either",
    ),
    CatalogEntry(
        "sigma-hat", lambda: hat_select_eq(0, 1, 2),
        _strong_full_rel_injective(), "Prop 3.6",
        notes="uses equality but eliminates it from the output",
    ),
    CatalogEntry(
        "compose", self_compose, _strong_full_rel_injective(),
        "Example 2.2 + Prop 3.6",
        notes="= pi(sigma-hat(R x R)); Example 2.2's Q1",
    ),
    CatalogEntry(
        "difference", difference_op, _strong_full_rel_injective(),
        "Props 3.4/3.6",
    ),
    CatalogEntry(
        "intersection", intersection_op, _strong_full_rel_injective(),
        "Props 3.4/3.6",
    ),
    CatalogEntry(
        "eq_adom", eq_adom, _rel_full_strong_injective(), "Prop 3.5",
        notes="separates the rel and strong hierarchies",
    ),
    CatalogEntry(
        "even", even_query, _injective_only(), "Lemma 2.12",
        notes="cardinality query: total injective mappings preserve "
              "cardinality, nothing larger does",
    ),
    CatalogEntry(
        "semijoin", semijoin, _strong_full_rel_injective(),
        "derived from Prop 3.6 closure",
        notes="equality used on the join column but not shown",
    ),
    CatalogEntry(
        "antijoin", antijoin, _strong_full_rel_injective(),
        "derived from Prop 3.6 closure",
    ),
    CatalogEntry(
        "division", division, _strong_full_rel_injective(),
        "derived: pi1(R) - pi1((pi1(R) x S) - R)",
    ),
    # Nested operations ("in the full paper we deal also with nested
    # relations/complex value operations", Section 3).
    CatalogEntry(
        "powerset", powerset, _rel_full_strong_injective(),
        "full paper (S3), derived",
        notes="a subset of the source need not be maximal w.r.t. its "
              "image under a collapsing mapping",
    ),
    CatalogEntry("flatten", flatten, _fully_generic(), "full paper (S3), derived"),
    CatalogEntry(
        "singleton", singleton, _rel_full_strong_injective(),
        "full paper (S3), derived",
        notes="{x} is not the maximal preimage of {h(x)} when h collapses",
    ),
    CatalogEntry(
        "unnest", lambda: unnest(1, 2), _fully_generic(), "full paper (S3)",
    ),
)


def expected_cell(entry: CatalogEntry, cls: str, mode: ExtensionMode) -> Optional[bool]:
    """The paper's expected verdict for one cell, or None if unstated."""
    return entry.expectation.get((cls, mode))
