"""Genericity classification: find the tightest class for a query.

"Given a query, the interesting question is not whether it is generic
but rather what is the tightest genericity class for it" (Section 1).
:func:`classify` sweeps a query over the standard lattice x both
extension modes, recording for each cell either a verified
counterexample (NOT generic there) or the number of randomized checks
survived (empirically generic).  The result is the classification table
— the reproduction's stand-in for the paper's Section 3 narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..algebra.query import Query
from ..mappings.extensions import REL, STRONG, ExtensionMode
from ..types.ast import INT, BaseType
from .hierarchy import STANDARD_LATTICE, GenericitySpec
from .invariance import instantiate_at
from .witnesses import SearchResult, find_counterexample, verify_witness

__all__ = ["Verdict", "ClassificationRow", "classify", "classification_table"]


@dataclass
class Verdict:
    """Outcome for one (spec, mode) cell."""

    spec: GenericitySpec
    mode: ExtensionMode
    generic: bool
    pairs_checked: int
    witness_verified: bool = False

    def label(self) -> str:
        if self.generic:
            return f"generic ({self.pairs_checked} checks)"
        mark = "verified" if self.witness_verified else "UNVERIFIED"
        return f"NOT generic (witness {mark})"


@dataclass
class ClassificationRow:
    """The full classification of one query."""

    query_name: str
    verdicts: list[Verdict]

    def tightest(self, mode: ExtensionMode) -> Optional[GenericitySpec]:
        """The largest mapping class the query is (empirically) generic
        for in the given mode — its tightest genericity classification.

        The lattice is ordered largest class first, so the first generic
        cell wins."""
        for verdict in self.verdicts:
            if verdict.mode == mode and verdict.generic:
                return verdict.spec
        return None

    def cell(self, spec_name: str, mode: ExtensionMode) -> Verdict:
        for verdict in self.verdicts:
            if verdict.spec.name == spec_name and verdict.mode == mode:
                return verdict
        raise KeyError((spec_name, mode))


def classify(
    query: Query,
    lattice: Sequence[GenericitySpec] = STANDARD_LATTICE,
    modes: Sequence[ExtensionMode] = (REL, STRONG),
    base: BaseType = INT,
    trials: int = 60,
    seed: int = 0,
    signature=None,
) -> ClassificationRow:
    """Classify ``query`` against every (spec, mode) cell of the lattice."""
    in_type = instantiate_at(query.input_type, base)
    out_type = instantiate_at(query.output_type, base)
    verdicts: list[Verdict] = []
    # One memo for the whole lattice sweep: every cell re-applies the
    # same pure query to overlapping inputs (queries are deterministic),
    # so outputs are shared across (spec, mode) cells.
    fn_cache: dict = {}
    for spec in lattice:
        for mode in modes:
            result: SearchResult = find_counterexample(
                query,
                spec,
                mode,
                base=base,
                trials=trials,
                seed=seed,
                signature=signature,
                input_type=in_type,
                output_type=out_type,
                fn_cache=fn_cache,
            )
            if result.found:
                verified = verify_witness(
                    query, result.witness, in_type, out_type
                )
                verdicts.append(
                    Verdict(spec, mode, False, result.pairs_checked, verified)
                )
            else:
                verdicts.append(
                    Verdict(spec, mode, True, result.pairs_checked)
                )
    return ClassificationRow(query.name, verdicts)


def classification_table(
    queries: Sequence[Query],
    lattice: Sequence[GenericitySpec] = STANDARD_LATTICE,
    modes: Sequence[ExtensionMode] = (REL, STRONG),
    trials: int = 40,
    seed: int = 0,
    signature=None,
) -> list[ClassificationRow]:
    """Classify a catalog of queries; the Section 3 table generator."""
    return [
        classify(
            q, lattice, modes, trials=trials, seed=seed, signature=signature
        )
        for q in queries
    ]
