"""The hierarchy of genericity classes (Sections 2.3 - 2.5).

A genericity class is determined by a *class of mappings*: all mappings,
total+surjective, functional, injective, bijective — optionally refined
by preservation constraints for first-order constants (regular or
strict) and interpreted functions/predicates.  Proposition 2.10: smaller
mapping classes induce larger classes of generic queries, so the specs
below form a lattice ordered by mapping-class inclusion.

:class:`GenericitySpec` names one node of the lattice and knows how to
generate random member families (by construction where possible, by
constrained rejection sampling for predicate preservation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..mappings.families import (
    ConstantSpec,
    MappingFamily,
    preserves_predicate,
)
from ..mappings.generators import (
    MAPPING_CLASSES,
    random_domain,
    random_mapping_in_class,
)
from ..mappings.mapping import Mapping
from ..types.ast import INT, BaseType
from ..types.signatures import Interpreted

__all__ = [
    "GenericitySpec",
    "force_preserve_constant",
    "constrain_to_unary_predicate",
    "STANDARD_LATTICE",
    "spec_leq",
]


def force_preserve_constant(mapping: Mapping, spec: ConstantSpec) -> Mapping:
    """Minimal surgery turning a mapping into one preserving ``spec``.

    Regular preservation adds the pair ``(c, c)``; strict preservation
    additionally removes every pair associating ``c`` with anything
    else on either side.
    """
    pairs = set(mapping.pairs())
    pairs.add((spec.value, spec.value))
    if spec.strict:
        pairs = {
            (x, y)
            for x, y in pairs
            if (x == spec.value) == (y == spec.value)
        }
    return Mapping(
        pairs,
        mapping.source,
        mapping.target,
        source_domain=mapping.source_domain,
        target_domain=mapping.target_domain,
    )


def constrain_to_unary_predicate(
    mapping: Mapping, predicate: Interpreted
) -> Mapping:
    """Drop pairs on which a *unary* predicate disagrees.

    A mapping preserves a unary predicate ``p`` (functional
    interpretation, bool fixed to identity) iff ``p(x) = p(y)`` for all
    related pairs — so filtering pairs is exactly the constraint.  This
    realizes e.g. the mappings preserving ``=_7`` of Section 2.5.
    """
    if predicate.arity != 1:
        raise ValueError("constructive constraint only for unary predicates")
    pairs = {
        (x, y) for x, y in mapping.pairs() if predicate.fn(x) == predicate.fn(y)
    }
    return Mapping(
        pairs,
        mapping.source,
        mapping.target,
        source_domain=mapping.source_domain,
        target_domain=mapping.target_domain,
    )


@dataclass(frozen=True)
class GenericitySpec:
    """One node of the genericity lattice.

    ``mapping_class`` is a :data:`~repro.mappings.generators.MAPPING_CLASSES`
    name; ``constants`` and ``predicates`` refine it with preservation
    constraints.  ``same_domain`` forces codomain = domain (mappings of a
    base type into itself), needed e.g. for Lemma 2.12's ``even`` test.
    """

    name: str
    mapping_class: str = "all"
    constants: tuple[ConstantSpec, ...] = ()
    predicates: tuple[str, ...] = ()  # names resolved via a signature
    same_domain: bool = False

    def generate_family(
        self,
        rng: random.Random,
        base_types: Sequence[BaseType] = (INT,),
        domain_size: int = 4,
        codomain_size: Optional[int] = None,
        signature=None,
    ) -> MappingFamily:
        """A random family belonging to this spec's mapping class."""
        codomain_size = (
            codomain_size if codomain_size is not None else domain_size
        )
        if self.mapping_class in ("bijective",):
            codomain_size = domain_size
        mappings = {}
        for i, base in enumerate(base_types):
            left = random_domain(rng, domain_size, base, offset=0)
            if self.same_domain:
                right = list(left)
            else:
                right = random_domain(
                    rng, codomain_size, base, offset=100 + 100 * i
                )
            # Constants must live in *both* domains before the random
            # mapping is drawn: regular preservation allows other
            # elements to map onto the constant, which can only happen
            # if the constant is a possible target.
            for constant in self.constants:
                if constant.base == base:
                    if constant.value not in left:
                        left = list(left) + [constant.value]
                    if constant.value not in right:
                        right = list(right) + [constant.value]
            mapping = random_mapping_in_class(
                rng, self.mapping_class, left, right, base, base
            )
            for constant in self.constants:
                if constant.base == base:
                    mapping = force_preserve_constant(mapping, constant)
            for predicate_name in self.predicates:
                if signature is None:
                    raise ValueError(
                        "predicate constraints need a signature to resolve"
                    )
                symbol = signature[predicate_name]
                if symbol.arity == 1:
                    mapping = constrain_to_unary_predicate(mapping, symbol)
            mappings[base.name] = mapping
        family = MappingFamily(mappings)
        # Binary predicates go through rejection sampling at family level.
        binary = [
            signature[p]
            for p in self.predicates
            if signature is not None and signature[p].arity > 1
        ]
        if binary:
            for _ in range(200):
                if all(preserves_predicate(family, s) for s in binary):
                    return family
                family = GenericitySpec(
                    self.name,
                    self.mapping_class,
                    self.constants,
                    tuple(p for p in self.predicates if signature[p].arity == 1),
                    self.same_domain,
                ).generate_family(
                    rng, base_types, domain_size, codomain_size, signature
                )
            raise RuntimeError(
                f"could not sample a family preserving {self.predicates}"
            )
        return family

    def __str__(self) -> str:
        parts = [self.mapping_class]
        for c in self.constants:
            parts.append(("strict " if c.strict else "") + f"preserve {c.value!r}")
        for p in self.predicates:
            parts.append(f"preserve {p}")
        return f"{self.name}({', '.join(parts)})"


#: The lattice explored by the classification experiments, ordered from
#: the largest mapping class (hence *smallest* genericity class, Prop
#: 2.10) to the smallest.
STANDARD_LATTICE: tuple[GenericitySpec, ...] = (
    GenericitySpec("all", "all"),
    GenericitySpec("total_surjective", "total_surjective"),
    GenericitySpec("functional", "functional"),
    GenericitySpec("injective", "injective"),
    GenericitySpec("bijective", "bijective"),
)

#: Containment order between the standard mapping classes: maps a class
#: name to the names of (weakly) smaller classes.
_CONTAINS: dict[str, frozenset[str]] = {
    "all": frozenset(MAPPING_CLASSES),
    "total_surjective": frozenset(
        {"total_surjective", "surjective_functional", "bijective"}
    ),
    "functional": frozenset(
        {"functional", "surjective_functional", "injective", "bijective"}
    ),
    "surjective_functional": frozenset({"surjective_functional", "bijective"}),
    "injective": frozenset({"injective", "bijective"}),
    "bijective": frozenset({"bijective"}),
}


def spec_leq(smaller: GenericitySpec, larger: GenericitySpec) -> bool:
    """True iff ``smaller``'s mapping class is contained in ``larger``'s
    (ignoring preservation refinements).  By Prop 2.10, genericity w.r.t.
    the larger class then implies genericity w.r.t. the smaller."""
    return smaller.mapping_class in _CONTAINS[larger.mapping_class]
