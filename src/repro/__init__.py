"""repro — executable reproduction of "On Genericity and Parametricity"
(Beeri, Milo & Ta-Shma, PODS 1996).

Subpackages:

* :mod:`repro.types` — complex-value and 2nd-order type system.
* :mod:`repro.mappings` — relational mappings and rel/strong extensions.
* :mod:`repro.algebra` — relational / nested algebra and calculus substrate.
* :mod:`repro.genericity` — invariance checking and genericity classification.
* :mod:`repro.lambda2` — System F with parametricity checking.
* :mod:`repro.listset` — the list-to-set parametricity transfer.
* :mod:`repro.optimizer` — genericity/parametricity-justified query rewrites.
* :mod:`repro.engine` — in-memory database engine and workloads.
* :mod:`repro.experiments` — one experiment per numbered claim of the paper.
"""

__version__ = "1.0.0"
