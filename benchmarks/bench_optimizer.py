"""Benchmarks for the Section 4.4 optimizer experiments."""

from conftest import run_experiment


def test_opt_equivalences(benchmark):
    """The Section 4.4 rewrites, verified end to end."""
    run_experiment(benchmark, "E-OPT")


def test_opt_cost_sweep(benchmark):
    """Measured work reduction of the justified rewrites at scale."""
    run_experiment(benchmark, "E-OPT-COST", rounds=2)


def test_static_soundness(benchmark):
    """Static genericity analysis verified against dynamic search."""
    run_experiment(benchmark, "E-STATIC")
