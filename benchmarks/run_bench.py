#!/usr/bin/env python3
"""Benchmark runner shim.

The suites live in :mod:`repro.bench` (importable, also reachable as
``python -m repro bench``); this script only sets up ``sys.path`` for
in-repo use:

    PYTHONPATH=src python benchmarks/run_bench.py [--skip-eperf] [--quick]

Writes ``BENCH_PR7.json`` by default; see ``repro.bench --help`` for
the full option list and ``benchmarks/compare_bench.py`` for the
regression gate over two such files.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
