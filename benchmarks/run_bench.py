#!/usr/bin/env python3
"""Benchmark runner: E-PERF sweep + executor micro-benchmarks.

Writes ``BENCH_PR1.json`` at the repo root so the perf trajectory is
tracked from PR 1 onward.  Run with:

    PYTHONPATH=src python benchmarks/run_bench.py [--skip-eperf]

Measurements:

* **plan execution** — reference interpreter vs streaming executor
  (cold) vs warm result cache, on the HR workload at growing sizes and
  on a deep pipelined plan where streaming avoids per-level
  materialization;
* **hash join** — multi-column build/probe vs the reference's
  first-column index;
* **cache hit ratio** — the invariance-style sweep: a fixed plan set
  re-executed over the same database across repetitions, as the
  Section 3/4 experiments do;
* **E-PERF** — the existing ``bench_framework.py`` suite, run once via
  pytest (assertion pass/fail + duration) unless ``--skip-eperf``.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.exec import execute_streaming
from repro.engine.workload import (  # noqa: E402
    hr_database,
    random_database,
    random_plan,
)
from repro.optimizer.plan import (  # noqa: E402
    Difference,
    Join,
    MapNode,
    Project,
    Scan,
    Select,
    Union,
    execute_reference,
)
from repro.optimizer.rewriter import Rewriter  # noqa: E402


def _time(fn, repeats: int = 5) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def bench_plan_execution(sizes=(100, 400, 1600)) -> dict:
    """HR workload: reference vs streaming (cold) vs warm cache."""
    rows = []
    for size in sizes:
        db = hr_database(random.Random(4), employees=size,
                         students=size // 2, overlap=size // 4)
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        reference_s = _time(lambda: execute_reference(plan, db.relations))
        streaming_s = _time(
            lambda: execute_streaming(plan, db.relations)
        )
        db.run(plan)  # warm
        warm_s = _time(lambda: db.run(plan))
        check = db.run(plan)
        assert check.value == execute_reference(plan, db.relations).value
        rows.append({
            "size": size,
            "reference_s": reference_s,
            "streaming_cold_s": streaming_s,
            "cached_warm_s": warm_s,
            "streaming_speedup": reference_s / max(streaming_s, 1e-9),
            "warm_speedup": reference_s / max(warm_s, 1e-9),
        })
    return {"name": "hr_plan_execution", "rows": rows}


def bench_deep_pipeline(sizes=(400, 1600)) -> dict:
    """A 6-operator pipeline: streaming pays no per-level CVSet build."""
    rows = []
    for size in sizes:
        db = hr_database(random.Random(8), employees=size,
                         students=size // 2, overlap=size // 4)
        plan = Project(
            (0,),
            Select(
                "always", lambda t: True,
                MapNode(
                    "swap", lambda t: t.project((2, 1, 0)),
                    Select(
                        "always", lambda t: True,
                        Union(Scan("employees"), Scan("students")),
                    ),
                ),
            ),
        )
        reference_s = _time(lambda: execute_reference(plan, db.relations))
        streaming_s = _time(
            lambda: execute_streaming(plan, db.relations)
        )
        rows.append({
            "size": size,
            "reference_s": reference_s,
            "streaming_cold_s": streaming_s,
            "streaming_speedup": reference_s / max(streaming_s, 1e-9),
        })
    return {"name": "deep_pipeline", "rows": rows}


def bench_hash_join(sizes=(200, 800, 2000)) -> dict:
    """Join build/probe micro-benchmark, multi-column ``on``."""
    rows = []
    for size in sizes:
        rng = random.Random(9)
        db = random_database(rng, ("a", "b"), arity=2,
                             domain_size=max(size // 4, 4), max_rows=size)
        plan = Join(((0, 0), (1, 1)), Scan("a"), Scan("b"))
        reference_s = _time(lambda: execute_reference(plan, db))
        streaming_s = _time(lambda: execute_streaming(plan, db))
        rows.append({
            "size": size,
            "reference_s": reference_s,
            "streaming_s": streaming_s,
            "speedup": reference_s / max(streaming_s, 1e-9),
        })
    return {"name": "hash_join_build_probe", "rows": rows}


def bench_cache_invariance_sweep(repetitions: int = 5) -> dict:
    """The invariance/verification access pattern: a fixed plan set
    re-executed over the same database, many times.

    The first pass is cold (misses + populate); later passes should hit.
    Reported hit rate covers the warm phase, plus the overall rate."""
    db = hr_database(random.Random(12), employees=400, students=200,
                     overlap=50)
    rewriter = Rewriter(db.catalog)
    base_plans = [
        Project((0,), Union(Scan("employees"), Scan("students"))),
        Project((0,), Difference(Scan("employees"), Scan("students"))),
        Project((0,), Difference(Scan("employees"), Scan("contractors"))),
        Join(((0, 0),), Scan("employees"), Scan("students")),
        Project((0, 2), Select("always", lambda t: True,
                               Union(Scan("employees"),
                                     Scan("contractors")))),
    ]
    plans = base_plans + [rewriter.optimize(p) for p in base_plans]

    def sweep():
        for plan in plans:
            db.run(plan)

    sweep()  # cold pass
    cold = db.plan_cache.stats()
    db.plan_cache.reset_stats()
    warm_start = time.perf_counter()
    for _ in range(repetitions - 1):
        sweep()
    warm_elapsed = time.perf_counter() - warm_start
    warm = db.plan_cache.stats()
    return {
        "name": "cache_invariance_sweep",
        "plans": len(plans),
        "repetitions": repetitions,
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": warm["hit_rate"],
        "warm_elapsed_s": warm_elapsed,
    }


def bench_equivalence_spotcheck(pairs: int = 50) -> dict:
    """Random-plan equivalence (the property-test workload), timed."""
    rng = random.Random(77)
    start = time.perf_counter()
    for _ in range(pairs):
        db = random_database(rng, ("r", "s", "t"), arity=2, domain_size=5,
                             max_rows=10)
        plan = random_plan(rng, ("r", "s", "t"), depth=3)
        assert (
            execute_streaming(plan, db).value
            == execute_reference(plan, db).value
        )
    return {
        "name": "random_plan_equivalence",
        "pairs": pairs,
        "elapsed_s": time.perf_counter() - start,
    }


def run_eperf() -> dict:
    """The E-PERF sweep (bench_framework.py), one pass via pytest."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest",
         str(REPO_ROOT / "benchmarks" / "bench_framework.py"),
         "-q", "--benchmark-disable", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True,
        text=True,
    )
    return {
        "name": "eperf_sweep",
        "passed": proc.returncode == 0,
        "elapsed_s": time.perf_counter() - start,
        "tail": proc.stdout.strip().splitlines()[-1:] if proc.stdout else [],
    }


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--skip-eperf", action="store_true",
                        help="skip the pytest E-PERF sweep")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR1.json"))
    args = parser.parse_args()

    results = {
        "pr": 1,
        "title": "streaming execution engine",
        "benchmarks": [],
    }
    for bench in (
        bench_plan_execution,
        bench_deep_pipeline,
        bench_hash_join,
        bench_cache_invariance_sweep,
        bench_equivalence_spotcheck,
    ):
        result = bench()
        results["benchmarks"].append(result)
        print(f"[bench] {result['name']}: done")
    if not args.skip_eperf:
        result = run_eperf()
        results["benchmarks"].append(result)
        print(f"[bench] eperf_sweep: passed={result['passed']}")

    hr_rows = results["benchmarks"][0]["rows"]
    largest = hr_rows[-1]
    sweep = next(b for b in results["benchmarks"]
                 if b["name"] == "cache_invariance_sweep")
    results["acceptance"] = {
        "hr_largest_size": largest["size"],
        "hr_warm_speedup_vs_reference": largest["warm_speedup"],
        "hr_streaming_cold_speedup_vs_reference":
            largest["streaming_speedup"],
        "warm_cache_hit_rate": sweep["warm_hit_rate"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(results["acceptance"], indent=2))


if __name__ == "__main__":
    main()
