"""Benchmarks regenerating the Section 2 experiment tables."""

from conftest import run_experiment


def test_example_2_2(benchmark):
    """Example 2.2: composition query vs strong/regular homomorphisms."""
    run_experiment(benchmark, "E-2.2", rounds=3)


def test_example_2_6(benchmark):
    """Example 2.6: rel vs strong extension modes on the paper's data."""
    run_experiment(benchmark, "E-2.6", rounds=3)


def test_prop_2_8(benchmark):
    """Prop 2.8: structural properties of extensions."""
    run_experiment(benchmark, "E-2.8", rounds=2)


def test_queries_q3_q4(benchmark):
    """Definition 2.9's Q3/Q4 examples."""
    run_experiment(benchmark, "E-2.9")


def test_prop_2_10(benchmark):
    """Prop 2.10: lattice monotonicity."""
    run_experiment(benchmark, "E-2.10")


def test_prop_2_11(benchmark):
    """Prop 2.11: functional vs general mappings coincide."""
    run_experiment(benchmark, "E-2.11")


def test_lemma_2_12(benchmark):
    """Lemma 2.12: `even` vs strict constant preservation."""
    run_experiment(benchmark, "E-2.12")


def test_prop_2_13(benchmark):
    """Prop 2.13: predicate preservation symmetric under negation."""
    run_experiment(benchmark, "E-2.13", rounds=2)


def test_query_q5(benchmark):
    """Section 2.4/2.5: Q5 and constant/predicate preservation."""
    run_experiment(benchmark, "E-Q5")


def test_order_preservation(benchmark):
    """Section 2.5: order predicates and monotone mappings."""
    run_experiment(benchmark, "E-ORDER")
