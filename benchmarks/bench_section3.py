"""Benchmarks regenerating the Section 3 experiment tables."""

from conftest import run_experiment


def test_prop_3_1_3_2(benchmark):
    """Prop 3.1 / Cor 3.2: the fully generic sublanguage."""
    run_experiment(benchmark, "E-3.1/3.2")


def test_prop_3_3(benchmark):
    """Prop 3.3: restricted calculus fragment fully generic."""
    run_experiment(benchmark, "E-3.3")


def test_prop_3_4(benchmark):
    """Prop 3.4: -, intersect break rel-full genericity."""
    run_experiment(benchmark, "E-3.4", rounds=2)


def test_prop_3_5(benchmark):
    """Prop 3.5: eq_adom separates the two extension modes."""
    run_experiment(benchmark, "E-3.5", rounds=2)


def test_prop_3_6(benchmark):
    """Prop 3.6: strong genericity and hat-selection."""
    run_experiment(benchmark, "E-3.6")


def test_prop_3_7_3_8(benchmark):
    """Props 3.7/3.8: complements under total+surjective mappings."""
    run_experiment(benchmark, "E-3.7/3.8")


def test_thm_3_9(benchmark):
    """Thm 3.9: the four-Russians instance."""
    run_experiment(benchmark, "E-3.9", rounds=2)


def test_table1(benchmark):
    """The master classification table across the full catalog."""
    run_experiment(benchmark, "E-TABLE1")


def test_inexpressibility(benchmark):
    """Genericity as an inexpressibility tool (Section 1)."""
    run_experiment(benchmark, "E-INEXPR")
