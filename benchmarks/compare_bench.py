#!/usr/bin/env python3
"""Perf-regression gate: diff two ``BENCH_*.json`` files.

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.20]

Benchmarks are matched by ``name``; within a benchmark, rows are
matched by their ``"size"`` key when present, by position otherwise
(rows repeating a size are disambiguated by position, never silently
collapsed).  Every shared numeric field ending in ``_s`` (a seconds
measurement) is compared; a field regresses when
``new > old * (1 + threshold)``.  Rows/fields present on only one side
are reported but never fail the gate (suites are allowed to grow).
Sub-millisecond timings are noise on shared CI hardware, so rows where
both sides are under ``--min-seconds`` are skipped.

A brand-new column can still be gated against an old one:
``--new-field-baseline compiled_cold_s=batch_cold_s`` (repeatable)
compares the new file's ``compiled_cold_s`` against the old file's
``batch_cold_s`` wherever the new field has no old counterpart — how a
PR introducing a faster executor proves the new path beats the old
fastest path instead of getting a free pass as an "added field".

**Every** regressed measurement in **every** suite is reported,
grouped by suite, before the gate exits 1 — one run of the gate is the
complete regression picture, never just the first offender.

Exit status: 0 when no shared measurement regressed, 1 otherwise.
Stdlib only — runnable with no repo setup at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _iter_rows(benchmark: dict):
    """Yield ``(row_key, row_dict)`` for a benchmark's comparable rows.

    Suites with a ``rows`` list yield each entry (keyed by ``size``
    when present, else by index); flat suites (a single dict of
    measurements) yield themselves under the empty key.
    """
    rows = benchmark.get("rows")
    if isinstance(rows, list):
        seen: set = set()
        for index, row in enumerate(rows):
            if isinstance(row, dict):
                key = f"size={row['size']}" if "size" in row else f"#{index}"
                if key in seen:
                    # Two rows with the same size (e.g. a suite that
                    # re-measures a size under a different config) must
                    # not collapse into one dict slot — a clobbered row
                    # would be a regression the gate never sees.
                    key = f"{key}#{index}"
                seen.add(key)
                yield key, row
    else:
        yield "", benchmark


def _timing_fields(row: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in row.items()
        if key.endswith("_s") and isinstance(value, (int, float))
    }


def compare(
    old: dict, new: dict, threshold: float, min_seconds: float,
    field_baselines: dict[str, str] | None = None,
) -> tuple[list[tuple[str, str]], list[str]]:
    """Returns ``(regressions, notes)`` comparing two bench documents.

    ``regressions`` is a list of ``(suite_name, detail)`` pairs — one
    per regressed measurement, across *all* suites (the gate never
    stops at the first bad suite) — in sorted suite order.  ``notes``
    are informational (suites/rows appearing or disappearing).

    ``field_baselines`` maps a new-file field name to the old-file
    field it should gate against when the old file lacks the new field
    (see the module docstring)."""
    field_baselines = field_baselines or {}
    regressions: list[tuple[str, str]] = []
    notes: list[str] = []
    old_benchmarks = {
        b.get("name"): b for b in old.get("benchmarks", []) if b.get("name")
    }
    new_benchmarks = {
        b.get("name"): b for b in new.get("benchmarks", []) if b.get("name")
    }
    for name in old_benchmarks:
        if name not in new_benchmarks:
            notes.append(f"benchmark dropped: {name}")
    for name in new_benchmarks:
        if name not in old_benchmarks:
            notes.append(f"benchmark added: {name}")

    for name in sorted(set(old_benchmarks) & set(new_benchmarks)):
        old_rows = dict(_iter_rows(old_benchmarks[name]))
        new_rows = dict(_iter_rows(new_benchmarks[name]))
        for key in new_rows:
            if key not in old_rows:
                notes.append(f"{name}[{key}]: row added")
        for key in old_rows:
            if key not in new_rows:
                notes.append(f"{name}[{key}]: row dropped")
                continue
            old_fields = _timing_fields(old_rows[key])
            new_fields = _timing_fields(new_rows[key])
            pairs = [
                (field, field, field)
                for field in sorted(set(old_fields) & set(new_fields))
            ]
            for new_field in sorted(set(new_fields) - set(old_fields)):
                old_field = field_baselines.get(new_field)
                if old_field in old_fields:
                    pairs.append((
                        f"{new_field} (vs {old_field})",
                        old_field,
                        new_field,
                    ))
            for label, old_field, new_field in pairs:
                was, now = old_fields[old_field], new_fields[new_field]
                if was < min_seconds and now < min_seconds:
                    continue
                if now > was * (1.0 + threshold):
                    regressions.append((
                        name,
                        f"[{key}].{label}: {was:.6f}s -> {now:.6f}s "
                        f"(+{(now / max(was, 1e-12) - 1.0) * 100:.1f}%, "
                        f"threshold +{threshold * 100:.0f}%)",
                    ))
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files; exit 1 on regression"
    )
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed relative slowdown per row (default 0.20 = +20%%)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=1e-4,
        help="ignore rows where both sides are below this (noise floor)",
    )
    parser.add_argument(
        "--new-field-baseline", action="append", default=[],
        metavar="NEW=OLD",
        help="gate a field present only in NEW.json against this "
             "OLD.json field (repeatable)",
    )
    args = parser.parse_args(argv)
    field_baselines: dict[str, str] = {}
    for spec in args.new_field_baseline:
        new_field, sep, old_field = spec.partition("=")
        if not sep or not new_field or not old_field:
            print(f"error: --new-field-baseline wants NEW=OLD, "
                  f"got {spec!r}", file=sys.stderr)
            return 2
        field_baselines[new_field] = old_field

    try:
        old = json.loads(args.old.read_text())
        new = json.loads(args.new.read_text())
    except OSError as exc:
        print(f"error: cannot read benchmark file: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: not valid JSON: {exc}", file=sys.stderr)
        return 2
    regressions, notes = compare(
        old, new, args.threshold, args.min_seconds, field_baselines
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        suites: list[str] = []
        for suite, _ in regressions:
            if suite not in suites:
                suites.append(suite)
        print(f"{len(regressions)} regression(s) in {len(suites)} "
              f"suite(s) beyond +{args.threshold * 100:.0f}%:")
        for suite in suites:
            print(f"  {suite}:")
            for name, detail in regressions:
                if name == suite:
                    print(f"    {detail}")
        return 1
    print(f"no regressions beyond +{args.threshold * 100:.0f}% "
          f"({args.old.name} -> {args.new.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
