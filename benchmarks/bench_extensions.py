"""Benchmarks for the extension experiments (full-paper material)."""

from conftest import run_experiment


def test_bags(benchmark):
    """Bag algebra genericity under support-based extensions."""
    run_experiment(benchmark, "E-BAGS")


def test_fixpoint(benchmark):
    """Transitive-closure genericity (fixpoint/while thread)."""
    run_experiment(benchmark, "E-FIX")


def test_church_lists(benchmark):
    """Lists via Church encodings in pure System F."""
    run_experiment(benchmark, "E-CHURCH", rounds=2)


def test_search_ablation(benchmark):
    """Counterexample search effort vs domain size."""
    run_experiment(benchmark, "E-ABLATION-SEARCH", rounds=2)
