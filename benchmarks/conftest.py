"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment table (the reproduction's
stand-in for the paper's tables/figures), asserts the reproduced
behaviour matches the paper, times the reproduction, and prints the
table so `pytest benchmarks/ --benchmark-only` output doubles as the
results appendix (EXPERIMENTS.md is generated from the same runs).
"""


from repro.experiments.registry import run
from repro.experiments.report import render


def run_experiment(benchmark, exp_id: str, rounds: int = 1):
    """Benchmark one experiment and print its table."""
    result = benchmark.pedantic(
        lambda: run(exp_id), rounds=rounds, iterations=1, warmup_rounds=0
    )
    print()
    print(render(result))
    assert result.matches_paper, f"{exp_id} diverged from the paper: {result.notes}"
    return result
