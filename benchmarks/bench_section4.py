"""Benchmarks regenerating the Section 4 experiment tables."""

from conftest import run_experiment


def test_parametricity_prelude(benchmark):
    """Thm 4.4: parametricity of the System F prelude."""
    run_experiment(benchmark, "E-4.4", rounds=2)


def test_prop_4_16(benchmark):
    """Prop 4.16: nest parity is generic but not parametric."""
    run_experiment(benchmark, "E-4.16")


def test_lemma_4_6(benchmark):
    """Lemma 4.6: toset vs the rel set extension."""
    run_experiment(benchmark, "E-4.6", rounds=2)


def test_example_4_14(benchmark):
    """Example 4.14: LtoS type classification."""
    run_experiment(benchmark, "E-4.14", rounds=3)


def test_transfer(benchmark):
    """Thm 4.13: list relatedness transfers to analogous sets."""
    run_experiment(benchmark, "E-4.13", rounds=2)


def test_cor_4_15(benchmark):
    """Cor 4.15: set parametricity via list analogues."""
    run_experiment(benchmark, "E-4.15", rounds=2)
