"""Framework performance benchmarks (the E-PERF sweep of DESIGN.md).

These measure the reproduction's own machinery — extension-relation
decision cost vs instance size and nesting depth, invariance-check
throughput, classification latency, System F evaluation and plan
execution — so regressions in the substrate are visible.
"""

import random

import pytest

from repro.algebra.operators import projection, select_eq
from repro.engine.workload import hr_database
from repro.genericity.classify import classify
from repro.genericity.invariance import check_invariance
from repro.lambda2.parametricity import check_parametricity
from repro.lambda2.prelude import build_prelude
from repro.mappings.extensions import REL, STRONG
from repro.mappings.families import MappingFamily
from repro.mappings.generators import (
    random_domain,
    random_mapping_in_class,
    random_relation_value,
)
from repro.engine.exec import execute_streaming
from repro.engine.workload import random_database, random_plan
from repro.optimizer.plan import (
    Difference,
    Join,
    Project,
    Scan,
    execute_reference,
)
from repro.optimizer.rewriter import Rewriter
from repro.types.ast import INT, set_of
from repro.types.values import CVSet


def _family(rng, size=6):
    left = random_domain(rng, size, INT)
    right = random_domain(rng, size, INT, offset=100)
    return MappingFamily(
        {"int": random_mapping_in_class(rng, "all", left, right, INT)}
    )


@pytest.mark.parametrize("size", [8, 32, 128])
def test_set_rel_holds_scaling(benchmark, size):
    """{H}^rel decision cost vs relation cardinality."""
    rng = random.Random(0)
    fam = _family(rng)
    rel = fam.extend(set_of(INT * INT), REL)
    domain = list(fam["int"].source_domain)
    r1 = random_relation_value(rng, 2, domain, min(size, len(domain) ** 2))
    from repro.genericity.invariance import sample_image

    r2 = sample_image(rel, r1, rng)
    assert r2 is not None
    result = benchmark(lambda: rel.holds(r1, r2))
    assert result


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_strong_holds_vs_nesting_depth(benchmark, depth):
    """{H}^strong decision cost vs set-nesting depth."""
    rng = random.Random(1)
    fam = _family(rng, size=3)
    t = INT
    for _ in range(depth):
        t = set_of(t)
    rel = fam.extend(t, STRONG)
    from repro.genericity.invariance import related_pair
    from repro.mappings.generators import random_value

    domain = list(fam["int"].source_domain)
    value = random_value(rng, t, {"int": domain}, max_collection=2)
    pair = related_pair(rel, value, STRONG, rng)
    if pair is None:
        pytest.skip("no strong partner for sampled value")
    r1, r2 = pair
    assert benchmark(lambda: rel.holds(r1, r2))


def test_invariance_check_throughput(benchmark):
    """Full invariance checks per second for projection."""
    rng = random.Random(2)
    fam = _family(rng)
    domain = list(fam["int"].source_domain)
    inputs = [random_relation_value(rng, 2, domain, 6) for _ in range(10)]

    def check():
        report = check_invariance(
            projection((0,), 2), fam, REL, inputs, rng=random.Random(3)
        )
        assert report.invariant
        return report

    benchmark(check)


def test_classification_latency(benchmark):
    """Time to fully classify one equality-using operation."""
    result = benchmark.pedantic(
        lambda: classify(select_eq(0, 1, 2), trials=15),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert not result.cell("all", REL).generic


def test_prelude_build(benchmark):
    """System F prelude: parse, typecheck and evaluate all entries."""
    prelude = benchmark(build_prelude)
    assert "append" in prelude.entries


def test_parametricity_check_append(benchmark):
    """Logical-relation check for append at its polymorphic type."""
    prelude = build_prelude()

    def check():
        report = check_parametricity(
            prelude.value("append"), prelude.type_of("append"), "append"
        )
        assert report.parametric
        return report

    benchmark(check)


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_plan_execution_scaling(benchmark, size):
    """Width-weighted executor throughput on the HR workload."""
    db = hr_database(random.Random(4), employees=size, students=size // 2,
                     overlap=size // 4)
    plan = Project((0,), Difference(Scan("employees"), Scan("students")))
    result = benchmark(lambda: db.run(plan))
    assert isinstance(result.value, CVSet)


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_streaming_executor_scaling(benchmark, size):
    """Streaming executor (cold, uncached) on the HR workload."""
    db = hr_database(random.Random(4), employees=size, students=size // 2,
                     overlap=size // 4)
    plan = Project((0,), Difference(Scan("employees"), Scan("students")))
    result = benchmark(
        lambda: execute_streaming(plan, db.relations)
    )
    reference = execute_reference(plan, db.relations)
    assert result.value == reference.value
    assert result.work == reference.work


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_cached_executor_warm_scaling(benchmark, size):
    """Warm result cache: repeated identical queries are O(key lookup)."""
    db = hr_database(random.Random(4), employees=size, students=size // 2,
                     overlap=size // 4)
    plan = Project((0,), Difference(Scan("employees"), Scan("students")))
    db.run(plan)  # warm the cache
    result = benchmark(lambda: db.run(plan))
    assert result.value == db.run_reference(plan).value


@pytest.mark.parametrize("size", [200, 800])
def test_hash_join_build_probe(benchmark, size):
    """Multi-column hash join over random binary relations."""
    rng = random.Random(9)
    db = random_database(rng, ("a", "b"), arity=2, domain_size=size // 4,
                         max_rows=size)
    plan = Join(((0, 0), (1, 1)), Scan("a"), Scan("b"))
    result = benchmark(lambda: execute_streaming(plan, db))
    assert result.value == execute_reference(plan, db).value


def test_random_plan_equivalence_throughput(benchmark):
    """Random-plan equivalence checks per second (the property-test
    workload; regressions here slow the whole verification suite)."""
    rng = random.Random(42)
    pairs = [
        (
            random_plan(rng, ("r", "s"), depth=3),
            random_database(rng, ("r", "s"), arity=2, domain_size=5,
                            max_rows=10),
        )
        for _ in range(10)
    ]

    def check():
        for plan, db in pairs:
            assert (
                execute_streaming(plan, db).value
                == execute_reference(plan, db).value
            )

    benchmark(check)


@pytest.mark.parametrize("size", [100, 400])
def test_rewrite_plus_execute_beats_original(benchmark, size):
    """End-to-end: optimize then execute; asserts the work reduction."""
    db = hr_database(random.Random(5), employees=size, students=size // 2,
                     overlap=size // 4)
    plan = Project((0,), Difference(Scan("employees"), Scan("students")))
    rewriter = Rewriter(db.catalog)
    optimized = rewriter.optimize(plan)

    def run_both():
        return db.run(plan).work, db.run(optimized).work

    before, after = benchmark(run_both)
    assert after <= before
