"""Ablation benchmarks: cost-model accuracy and rule-set contribution.

DESIGN.md calls out two design choices worth ablating: the width-
weighted work model (is the estimator faithful enough to drive plan
choice?) and the rewrite rule set (how much does each family of rules
contribute?).  These benches measure both on scaling HR workloads.
"""

import random

import pytest

from repro.engine.workload import hr_database
from repro.optimizer.cost import Stats, estimate
from repro.optimizer.parser import parse_plan
from repro.optimizer.rewriter import Rewriter
from repro.optimizer.rules import DEFAULT_RULES

PLANS = [
    "pi[1](employees U students)",
    "pi[1](employees - students)",
    "sigma[$1>1010](employees U students)",
    "pi[1](pi[1,2](employees) - pi[1,2](students))",
]


@pytest.mark.parametrize("size", [50, 200])
def test_cost_model_agrees_with_measurement(benchmark, size):
    """The estimator must pick the same winner as the executor."""
    db = hr_database(random.Random(0), employees=size, students=size // 2,
                     overlap=size // 5)
    stats = Stats.of_database(db.snapshot())
    agreements = []

    def sweep():
        agreements.clear()
        for text in PLANS:
            plan = parse_plan(text)
            rewritten = Rewriter(db.catalog).optimize(plan)
            est_rewrite = estimate(rewritten, stats).work <= estimate(plan, stats).work
            measured_rewrite = db.run(rewritten).work <= db.run(plan).work
            agreements.append(est_rewrite == measured_rewrite)
        return agreements

    result = benchmark(sweep)
    accuracy = sum(result) / len(result)
    print(f"\ncost-model winner-agreement @ n={size}: "
          f"{sum(result)}/{len(result)} plans ({accuracy:.0%})")
    assert accuracy >= 0.75


@pytest.mark.parametrize("rule_subset", ["none", "union-only", "all"])
def test_rule_set_contribution(benchmark, rule_subset):
    """Measured work with progressively larger rule sets."""
    db = hr_database(random.Random(1), employees=200, students=120,
                     overlap=30)
    if rule_subset == "none":
        rules = ()
    elif rule_subset == "union-only":
        rules = tuple(r for r in DEFAULT_RULES if "union" in r.name)
    else:
        rules = DEFAULT_RULES

    def total_work():
        total = 0
        for text in PLANS:
            plan = parse_plan(text)
            rewriter = Rewriter(db.catalog, rules=rules)
            total += db.run(rewriter.optimize(plan)).work
        return total

    work = benchmark(total_work)
    print(f"\ntotal measured work with rule set '{rule_subset}': {work}")
